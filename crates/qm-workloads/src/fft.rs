//! Fast Fourier Transform benchmark (thesis Table 6.3 / Fig. 6.10).
//!
//! An iterative radix-2 decimation-in-time FFT over Q6 fixed-point data
//! (the thesis converts its recursive FFT to a non-recursive form,
//! Fig. 6.9). The input is supplied already bit-reversed; each of the
//! log2(n) stages runs its n/2 butterflies in parallel (replicated `par`).
//! Twiddle factors are host-loaded tables.

use crate::data::Lcg;
use crate::fixed;
use crate::Workload;

/// Build the FFT workload for `n` points (`n` a power of two ≤ 32).
///
/// # Panics
///
/// Panics unless `n` is a power of two in `4..=32`.
#[must_use]
pub fn fft(n: usize) -> Workload {
    assert!(n.is_power_of_two() && (4..=32).contains(&n));
    let stages = n.trailing_zeros() as usize;
    let half = n / 2;
    // Twiddle tables indexed by [stage][position]: for stage s with span
    // m = 2^(s+1), position j in 0..2^s: w = exp(-2πi j / m). Flattened
    // as wr/wi[s * half + j] (only the first 2^s entries of a row used).
    let mut wr = vec![0i32; stages * half];
    let mut wi = vec![0i32; stages * half];
    for s in 0..stages {
        let m = 1usize << (s + 1);
        for j in 0..(1usize << s) {
            let angle = -2.0 * std::f64::consts::PI * (j as f64) / (m as f64);
            wr[s * half + j] = fixed::from_f64(angle.cos());
            wi[s * half + j] = fixed::from_f64(angle.sin());
        }
    }
    let mut rng = Lcg::new(0x4646_5400); // "FFT"
                                         // Q6 inputs in (−2.0, 2.0), already bit-reversed.
    let re: Vec<i32> = rng.vec(n, -2 * fixed::ONE, 2 * fixed::ONE);
    let im: Vec<i32> = rng.vec(n, -2 * fixed::ONE, 2 * fixed::ONE);
    let (ere, eim) = reference(&re, &im, n);
    let chk = ere.iter().chain(&eim).fold(0i32, |a, &v| a.wrapping_add(v));

    let source = format!(
        "\
var re[{n}], im[{n}], wr[{tw}], wi[{tw}]:
var s, span, base, chk, i:
seq
  s := 0
  span := 1
  while s < {stages}
    seq
      base := s * {half}
      par b = [0 for {half}]
        var grp, pos, top, bot, tr, ti, xr, xi:
        seq
          grp := b / span
          pos := b \\ span
          top := (grp * (span + span)) + pos
          bot := top + span
          xr := ((wr[base + pos] * re[bot]) - (wi[base + pos] * im[bot])) >> 6
          xi := ((wr[base + pos] * im[bot]) + (wi[base + pos] * re[bot])) >> 6
          tr := re[top]
          ti := im[top]
          re[top] := tr + xr
          im[top] := ti + xi
          re[bot] := tr - xr
          im[bot] := ti - xi
      s := s + 1
      span := span + span
  chk := 0
  seq i = [0 for {n}]
    chk := chk + re[i] + im[i]
  screen ! chk
",
        tw = stages * half,
    );
    Workload {
        name: format!("fft {n}-point"),
        source,
        inputs: vec![("re".into(), re), ("im".into(), im), ("wr".into(), wr), ("wi".into(), wi)],
        expected: vec![("re".into(), ere), ("im".into(), eim)],
        expected_output: vec![chk],
    }
}

/// Bit-exact reference: identical Q6 butterflies over bit-reversed input.
#[must_use]
pub fn reference(re: &[i32], im: &[i32], n: usize) -> (Vec<i32>, Vec<i32>) {
    let stages = n.trailing_zeros() as usize;
    let half = n / 2;
    let mut re = re.to_vec();
    let mut im = im.to_vec();
    for s in 0..stages {
        let span = 1usize << s;
        for b in 0..half {
            let grp = b / span;
            let pos = b % span;
            let top = grp * (span * 2) + pos;
            let bot = top + span;
            let angle = -2.0 * std::f64::consts::PI * (pos as f64) / ((span * 2) as f64);
            let wr = fixed::from_f64(angle.cos());
            let wi = fixed::from_f64(angle.sin());
            let xr = wr.wrapping_mul(re[bot]).wrapping_sub(wi.wrapping_mul(im[bot])) >> fixed::Q;
            let xi = wr.wrapping_mul(im[bot]).wrapping_add(wi.wrapping_mul(re[bot])) >> fixed::Q;
            let (tr, ti) = (re[top], im[top]);
            re[top] = tr.wrapping_add(xr);
            im[top] = ti.wrapping_add(xi);
            re[bot] = tr.wrapping_sub(xr);
            im[bot] = ti.wrapping_sub(xi);
        }
    }
    (re, im)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{from_f64, to_f64};

    fn bit_reverse(v: &[i32]) -> Vec<i32> {
        let n = v.len();
        let bits = n.trailing_zeros();
        let mut out = vec![0; n];
        for (i, &x) in v.iter().enumerate() {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            out[j] = x;
        }
        out
    }

    #[test]
    fn reference_matches_dft_of_impulse() {
        // FFT of a (bit-reversed) unit impulse is flat ONE.
        let n = 8;
        let mut re = vec![0i32; n];
        re[0] = from_f64(1.0); // impulse at index 0 is its own reversal
        let im = vec![0i32; n];
        let (r, i) = reference(&re, &im, n);
        assert!(r.iter().all(|&v| v == from_f64(1.0)), "{r:?}");
        assert!(i.iter().all(|&v| v == 0), "{i:?}");
    }

    #[test]
    fn reference_tracks_float_dft() {
        // A cosine at bin 1 concentrates energy there.
        let n = 16;
        let time: Vec<i32> = (0..n)
            .map(|t| from_f64((2.0 * std::f64::consts::PI * t as f64 / n as f64).cos()))
            .collect();
        let re = bit_reverse(&time);
        let im = vec![0i32; n];
        let (r, _) = reference(&re, &im, n);
        let bin1 = to_f64(r[1]);
        assert!((bin1 - n as f64 / 2.0).abs() < 1.0, "bin1 = {bin1}");
    }

    #[test]
    fn workload_runs_correctly() {
        let w = fft(8);
        let r = crate::WorkloadRun::with_pes(2).run(&w).unwrap();
        assert!(r.correct, "{:?}", r.mismatches);
    }
}
