//! Binary-recursive parallel reduction (the Fig. 6.9 theme: recursive
//! OCCAM procedures on reentrant contexts).
//!
//! `reduce(v, lo, hi, s)` splits its range in half and evaluates the two
//! halves as a `par` of recursive instantiations — exactly the
//! binary-recursion pattern the thesis discusses converting FFT away
//! from, kept here as a workload in its own right to exercise
//! recursion-through-`rfork` (reentrant contexts, §2.7).

use crate::data::Lcg;
use crate::Workload;

/// Build the reduction workload over `n` elements.
///
/// # Panics
///
/// Panics unless `4 ≤ n ≤ 64`.
#[must_use]
pub fn reduction(n: usize) -> Workload {
    assert!((4..=64).contains(&n));
    let source = format!(
        "\
proc reduce(v, value lo, value hi, var s) =
  if
    (hi - lo) <= 4
      var i, acc:
      seq
        acc := 0
        seq i = [lo for hi - lo]
          acc := acc + v[i]
        s := acc
    true
      var mid, s1, s2:
      seq
        mid := (lo + hi) / 2
        par
          reduce(v, lo, mid, s1)
          reduce(v, mid, hi, s2)
        s := s1 + s2
var data[{n}], total:
seq
  reduce(data, 0, {n}, total)
  screen ! total
"
    );
    let mut rng = Lcg::new(0x5245_4455); // "REDU"
    let data = rng.vec(n, -100, 101);
    let total = data.iter().fold(0i32, |a, &v| a.wrapping_add(v));
    Workload {
        name: format!("reduction over {n}"),
        source,
        inputs: vec![("data".into(), data)],
        expected: vec![],
        expected_output: vec![total],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursion_depth_scales_with_n() {
        for n in [4, 8, 16, 32] {
            let w = reduction(n);
            let r =
                crate::WorkloadRun::with_pes(4).run(&w).unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert!(r.correct, "n={n}: {:?}", r.mismatches);
            if n >= 16 {
                assert!(
                    r.outcome.contexts_created >= 7,
                    "binary recursion forks a context tree, got {}",
                    r.outcome.contexts_created
                );
            }
        }
    }

    #[test]
    fn parallel_halves_overlap() {
        let w = reduction(64);
        let one = crate::WorkloadRun::with_pes(1).run(&w).unwrap();
        let eight = crate::WorkloadRun::with_pes(8).run(&w).unwrap();
        assert!(one.correct && eight.correct);
        assert!(
            eight.outcome.elapsed_cycles < one.outcome.elapsed_cycles,
            "{} vs {}",
            eight.outcome.elapsed_cycles,
            one.outcome.elapsed_cycles
        );
    }
}
