//! Compile–load–run–verify driver shared by tests and the benchmark
//! harness.
//!
//! [`WorkloadRun`] is the single entry point: configure once (system
//! config, compiler options, optional fault plan), then
//! [`prepare`](WorkloadRun::prepare), [`run`](WorkloadRun::run) or
//! [`run_with_checkpoint`](WorkloadRun::run_with_checkpoint) any number
//! of workloads. (It replaced the old `run_workload` /
//! `prepare_workload` / `run_workload_cfg` free-function triple, whose
//! deprecated shims have since been removed.)

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use qm_occam::{compile, sema::SymKind, Compiled, Options};
use qm_sim::config::SystemConfig;
use qm_sim::fault::FaultPlan;
use qm_sim::snapshot::Snapshot;
use qm_sim::system::{RunOutcome, RunStatus, System};
use qm_sim::{Backend, Simulation, VerifyLevel};

use crate::Workload;

/// Driver failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The OCCAM source failed to compile.
    Compile(String),
    /// The simulation faulted.
    Sim(String),
    /// An input/expected array name did not resolve.
    Array(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Compile(m) => write!(f, "compile: {m}"),
            WorkloadError::Sim(m) => write!(f, "sim: {m}"),
            WorkloadError::Array(m) => write!(f, "array: {m}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Result of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Number of PEs simulated.
    pub pes: usize,
    /// Raw simulator outcome (cycles, statistics, degradation…).
    pub outcome: RunOutcome,
    /// True when every expected array and the host output matched.
    pub correct: bool,
    /// Human-readable mismatch descriptions (empty when correct).
    pub mismatches: Vec<String>,
}

/// One point of a Fig. 6.8-style speed-up curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// PEs simulated.
    pub pes: usize,
    /// Wall-clock cycles.
    pub cycles: u64,
    /// Throughput ratio `cycles(1 PE) / cycles(n PEs)`.
    pub throughput_ratio: f64,
}

/// Compilation is a pure function of (source, options), and sweep
/// harnesses recompile the same workload once per machine shape. A
/// process-wide memo of successful compiles makes the repeats free;
/// failures are not cached (they re-report with full diagnostics).
const COMPILE_MEMO_CAP: usize = 256;

fn compile_memoized(source: &str, opts: &Options) -> Result<Compiled, WorkloadError> {
    type Key = (String, (bool, bool, bool, bool));
    static MEMO: OnceLock<Mutex<HashMap<Key, Compiled>>> = OnceLock::new();
    let key = (
        source.to_string(),
        (
            opts.live_value_analysis,
            opts.input_sequencing,
            opts.priority_scheduling,
            opts.loop_unrolling,
        ),
    );
    let memo = MEMO.get_or_init(Mutex::default);
    if let Some(hit) = memo.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
        return Ok(hit.clone());
    }
    let compiled = compile(source, opts).map_err(|e| WorkloadError::Compile(e.to_string()))?;
    let mut guard = memo.lock().unwrap_or_else(PoisonError::into_inner);
    if guard.len() >= COMPILE_MEMO_CAP {
        guard.clear();
    }
    guard.insert(key, compiled.clone());
    Ok(compiled)
}

fn find_array(
    syms: &std::collections::HashMap<String, SymKind>,
    base: &str,
) -> Result<(u32, u32), WorkloadError> {
    let mut hits = syms.iter().filter_map(|(name, kind)| {
        let stem = name.split('.').next().unwrap_or(name);
        match kind {
            SymKind::Array { addr, len } if stem == base => Some((*addr, *len)),
            _ => None,
        }
    });
    let Some(hit) = hits.next() else {
        return Err(WorkloadError::Array(format!("no array named {base}")));
    };
    if hits.next().is_some() {
        return Err(WorkloadError::Array(format!("array name {base} is ambiguous")));
    }
    Ok(hit)
}

/// One configured workload execution: the system configuration, compiler
/// options and (optionally) a fault-injection plan, applied to any
/// workload via [`run`](Self::run) or [`prepare`](Self::prepare).
///
/// ```
/// use qm_workloads::{matmul, WorkloadRun};
///
/// let w = matmul::workload(4);
/// let r = WorkloadRun::with_pes(2).run(&w).unwrap();
/// assert!(r.correct);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkloadRun {
    /// System configuration (PE count, costs, placement, capacity).
    pub cfg: SystemConfig,
    /// Compiler options.
    pub opts: Options,
    /// Fault-injection plan applied before the run (`None` — and empty
    /// plans — leave the simulator on its fault-free fast path).
    pub fault_plan: Option<FaultPlan>,
    /// Host shards the run loop spreads the PEs over (`0` and `1` both
    /// mean the serial scheduler). Sharded runs are bit-identical to
    /// serial ones — see `docs/DETERMINISM.md` — so this only changes
    /// wall-clock time, never results.
    pub shards: usize,
    /// Execution backend for the PE hot loop. [`Backend::Translated`]
    /// builds under `VerifyLevel::Strict` (the fast path demands the
    /// verifier's certificate) and is bit-identical to
    /// [`Backend::Interp`] — like [`shards`](Self::shards), a host
    /// knob, never a result change.
    pub backend: Backend,
}

impl WorkloadRun {
    /// A run on the default 1-PE configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A run on `pes` PEs with default costs and options.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ pes ≤ 1024` (from [`SystemConfig::with_pes`]).
    #[must_use]
    pub fn with_pes(pes: usize) -> Self {
        WorkloadRun { cfg: SystemConfig::with_pes(pes), ..Self::default() }
    }

    /// Use `cfg` as the system configuration.
    #[must_use]
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Use `opts` as the compiler options.
    #[must_use]
    pub fn options(mut self, opts: Options) -> Self {
        self.opts = opts;
        self
    }

    /// Inject faults from `plan` during the run.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Spread the simulated PEs over `shards` host threads (bit-identical
    /// to the serial scheduler; worthwhile from ~64 simulated PEs up).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Execute on `backend` (see [`WorkloadRun::backend`]).
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Compile `w`, load it, initialise its input arrays and spawn the
    /// main context — everything short of `run`. Callers that need to
    /// touch the system first (e.g. install a trace sink) use this, then
    /// run and verify themselves (compare the output arrays against
    /// [`Workload::expected`], as [`run`](Self::run) does).
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] on compile faults or unresolvable input arrays.
    pub fn prepare(&self, w: &Workload) -> Result<(System, qm_occam::Compiled), WorkloadError> {
        let compiled = compile_memoized(&w.source, &self.opts)?;
        let sys = self.prepare_compiled(w, &compiled.object, &compiled.syms)?;
        Ok((sys, compiled))
    }

    /// [`prepare`](Self::prepare) minus the compile: load an
    /// already-compiled `w`, initialise its input arrays and spawn the
    /// main context. This is the entry point for executors that cache
    /// object code across runs (e.g. `qm-serve`'s compile cache) — the
    /// `object`/`syms` pair must come from compiling `w.source` under
    /// these options, or array addresses will not line up.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] on unresolvable input arrays or a missing
    /// `main` context.
    pub fn prepare_compiled(
        &self,
        w: &Workload,
        object: &qm_isa::asm::Object,
        syms: &std::collections::HashMap<String, SymKind>,
    ) -> Result<System, WorkloadError> {
        if object.symbol("main").is_none() {
            return Err(WorkloadError::Compile("no main context".into()));
        }
        let mut builder = Simulation::builder().config(self.cfg.clone()).object(object).no_spawn();
        if let Some(plan) = &self.fault_plan {
            builder = builder.fault_plan(plan.clone());
        }
        if self.shards > 1 {
            builder = builder.shards(self.shards);
        }
        if self.backend == Backend::Translated {
            // The translated backend only opens behind a clean Strict
            // report (every benchmark workload holds one; CI pins that).
            builder = builder.verify(VerifyLevel::Strict).backend(Backend::Translated);
        }
        let mut sys = builder.build().map_err(|e| WorkloadError::Sim(e.to_string()))?;
        for (base, values) in &w.inputs {
            let (addr, len) = find_array(syms, base)?;
            if values.len() as u32 != len {
                return Err(WorkloadError::Array(format!(
                    "{base}: {} values for a {len}-word array",
                    values.len()
                )));
            }
            for (i, &v) in values.iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)]
                sys.memory.poke_global(addr + 4 * i as u32, v);
            }
        }
        let main = object.symbol("main").expect("checked above");
        sys.spawn_main(main);
        Ok(sys)
    }

    /// Compile `w`, initialise its input arrays, run, and verify the
    /// result arrays and host output.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] on compile/simulation faults (verification
    /// *mismatches* are reported in [`BenchResult::correct`], not as
    /// errors).
    pub fn run(&self, w: &Workload) -> Result<BenchResult, WorkloadError> {
        let (mut sys, compiled) = self.prepare(w)?;
        let outcome = sys.run().map_err(|e| WorkloadError::Sim(e.to_string()))?;
        self.evaluate(w, &sys, &compiled.syms, outcome)
    }

    /// Like [`run`](Self::run), but pause at cycle `pause_at`, push the
    /// machine state through a full snapshot round trip
    /// (capture → encode → decode → restore) and finish on the restored
    /// system. By the snapshot subsystem's replay guarantee the result
    /// is bit-identical to [`run`](Self::run) — fault draws included —
    /// making this the one-call way to exercise checkpointing against
    /// any workload. Runs that complete before `pause_at` degrade to a
    /// plain run.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run), plus [`WorkloadError::Sim`] if the
    /// snapshot round trip itself fails.
    pub fn run_with_checkpoint(
        &self,
        w: &Workload,
        pause_at: u64,
    ) -> Result<BenchResult, WorkloadError> {
        let (mut sys, compiled) = self.prepare(w)?;
        let status = sys.run_until(pause_at).map_err(|e| WorkloadError::Sim(e.to_string()))?;
        let (sys, outcome) = match status {
            RunStatus::Done(outcome) => (sys, outcome),
            RunStatus::Paused { .. } => {
                let bytes = Snapshot::capture(&sys).encode();
                let snap =
                    Snapshot::decode(&bytes).map_err(|e| WorkloadError::Sim(e.to_string()))?;
                let mut restored =
                    System::restore(&snap).map_err(|e| WorkloadError::Sim(e.to_string()))?;
                // Host knobs are not snapshotted; re-apply them.
                restored.set_backend(self.backend);
                let outcome = restored.run().map_err(|e| WorkloadError::Sim(e.to_string()))?;
                (restored, outcome)
            }
        };
        self.evaluate(w, &sys, &compiled.syms, outcome)
    }

    /// Check the result arrays and host output of a finished run against
    /// the workload's expectations. Public so external executors that
    /// drive the system themselves (e.g. `qm-serve`'s time-sliced job
    /// runner, which pauses/restores between [`prepare`](Self::prepare)
    /// and completion) can produce the same [`BenchResult`] as
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Array`] if an expected array name does not
    /// resolve in `syms`.
    pub fn evaluate(
        &self,
        w: &Workload,
        sys: &System,
        syms: &std::collections::HashMap<String, SymKind>,
        outcome: RunOutcome,
    ) -> Result<BenchResult, WorkloadError> {
        let mut mismatches = Vec::new();
        for (base, expect) in &w.expected {
            let (addr, _len) = find_array(syms, base)?;
            for (i, &want) in expect.iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)]
                let got = sys.memory.peek_global(addr + 4 * i as u32);
                if got != want {
                    mismatches.push(format!("{base}[{i}]: got {got}, want {want}"));
                }
            }
        }
        if outcome.output != w.expected_output {
            mismatches.push(format!(
                "host output: got {:?}, want {:?}",
                outcome.output, w.expected_output
            ));
        }
        Ok(BenchResult { pes: self.cfg.pes, correct: mismatches.is_empty(), mismatches, outcome })
    }
}

/// Run `w` at each PE count and report throughput ratios relative to one
/// PE (the Fig. 6.8/6.10–6.12 curves).
///
/// # Errors
///
/// [`WorkloadError`] if any run fails; panics if any run is incorrect
/// (a wrong parallel run would make the curve meaningless).
///
/// # Panics
///
/// See above.
pub fn speedup_curve(
    w: &Workload,
    pe_counts: &[usize],
    opts: &Options,
) -> Result<Vec<CurvePoint>, WorkloadError> {
    let mut base_cycles = None;
    let mut out = Vec::new();
    for &pes in pe_counts {
        let r = WorkloadRun::with_pes(pes).options(*opts).run(w)?;
        assert!(r.correct, "{} on {pes} PEs: {:?}", w.name, r.mismatches);
        let cycles = r.outcome.elapsed_cycles;
        let base = *base_cycles.get_or_insert(cycles);
        #[allow(clippy::cast_precision_loss)]
        out.push(CurvePoint { pes, cycles, throughput_ratio: base as f64 / cycles as f64 });
    }
    Ok(out)
}
