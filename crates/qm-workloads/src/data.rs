//! Deterministic input data for the benchmarks.
//!
//! A fixed linear congruential generator keeps runs reproducible across
//! machines without pulling randomness into the workload definitions.

/// Minimal LCG (Numerical Recipes constants).
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u32,
}

impl Lcg {
    /// Seeded generator.
    #[must_use]
    pub fn new(seed: u32) -> Self {
        Lcg { state: seed }
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        self.state
    }

    /// Uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi);
        let span = (hi - lo) as u32;
        #[allow(clippy::cast_possible_wrap)]
        {
            lo + (self.next_u32() % span) as i32
        }
    }

    /// A vector of `n` values in `lo..hi`.
    pub fn vec(&mut self, n: usize, lo: i32, hi: i32) -> Vec<i32> {
        (0..n).map(|_| self.range(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a: Vec<i32> = Lcg::new(7).vec(5, -10, 10);
        let b: Vec<i32> = Lcg::new(7).vec(5, -10, 10);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (-10..10).contains(&v)));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(Lcg::new(1).vec(8, 0, 100), Lcg::new(2).vec(8, 0, 100));
    }
}
