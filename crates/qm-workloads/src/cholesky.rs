//! Cholesky decomposition benchmark (thesis Table 6.4 / Fig. 6.11).
//!
//! Factors a symmetric positive-definite Q6 fixed-point matrix `A` into
//! `L·Lᵀ` (left-looking, column by column). The diagonal element is
//! computed sequentially — including a Newton integer square root as an
//! OCCAM procedure — and the column below it is updated by a replicated
//! `par`, mirroring the loop-level parallelism the thesis exploits.

use crate::data::Lcg;
use crate::fixed;
use crate::Workload;

/// Build the Cholesky workload for an `n × n` SPD matrix.
///
/// # Panics
///
/// Panics unless `2 ≤ n ≤ 12`.
#[must_use]
pub fn cholesky(n: usize) -> Workload {
    assert!((2..=12).contains(&n));
    let nn = n * n;
    let source = format!(
        "\
proc isqrt(value x, var r) =
  if
    x <= 0
      r := 0
    true
      seq
        r := x
        while (x / r) < r
          r := (r + (x / r)) / 2
var a[{nn}], l[{nn}]:
var i, k, s, lkk, chk:
seq
  seq i = [0 for {nn}]
    l[i] := 0
  k := 0
  while k < {n}
    var j:
    seq
      s := a[(k * {n}) + k]
      seq j = [0 for k]
        s := s - ((l[(k * {n}) + j] * l[(k * {n}) + j]) >> 6)
      isqrt(s << 6, lkk)
      l[(k * {n}) + k] := lkk
      par i = [0 for {n} - (k + 1)]
        var t, j2, row:
        seq
          row := (i + k) + 1
          t := a[(row * {n}) + k]
          seq j2 = [0 for k]
            t := t - ((l[(row * {n}) + j2] * l[(k * {n}) + j2]) >> 6)
          l[(row * {n}) + k] := (t << 6) / lkk
      k := k + 1
  chk := 0
  seq i = [0 for {nn}]
    chk := chk + l[i]
  screen ! chk
"
    );
    let a = spd_matrix(n);
    let l = reference(&a, n);
    let chk = l.iter().fold(0i32, |acc, &v| acc.wrapping_add(v));
    Workload {
        name: format!("cholesky {n}x{n}"),
        source,
        inputs: vec![("a".into(), a)],
        expected: vec![("l".into(), l)],
        expected_output: vec![chk],
    }
}

/// Deterministic Q6 SPD matrix: `M·Mᵀ + n·I` over small random `M`.
#[must_use]
pub fn spd_matrix(n: usize) -> Vec<i32> {
    let mut rng = Lcg::new(0x4348_4f4c); // "CHOL"
    let m: Vec<i32> = rng.vec(n * n, -2 * fixed::ONE, 2 * fixed::ONE);
    let mut a = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0i32;
            for k in 0..n {
                s = s.wrapping_add(fixed::mul(m[i * n + k], m[j * n + k]));
            }
            if i == j {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                {
                    s = s.wrapping_add((n as i32) * fixed::ONE);
                }
            }
            a[i * n + j] = s;
        }
    }
    a
}

/// Bit-exact reference: same Q6 operations, same Newton square root.
#[must_use]
pub fn reference(a: &[i32], n: usize) -> Vec<i32> {
    let mut l = vec![0i32; n * n];
    for k in 0..n {
        let mut s = a[k * n + k];
        for j in 0..k {
            s = s.wrapping_sub(fixed::mul(l[k * n + j], l[k * n + j]));
        }
        let lkk = fixed::sqrt(s);
        l[k * n + k] = lkk;
        for i in (k + 1)..n {
            let mut t = a[i * n + k];
            for j in 0..k {
                t = t.wrapping_sub(fixed::mul(l[i * n + j], l[k * n + j]));
            }
            l[i * n + k] = fixed::div(t, lkk);
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{mul, to_f64};

    #[test]
    fn reference_reconstructs_a() {
        // L·Lᵀ ≈ A within fixed-point tolerance.
        let n = 5;
        let a = spd_matrix(n);
        let l = reference(&a, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0i32;
                for k in 0..n {
                    s = s.wrapping_add(mul(l[i * n + k], l[j * n + k]));
                }
                let err = (to_f64(s) - to_f64(a[i * n + j])).abs();
                assert!(err < 0.7, "A[{i}][{j}]: {} vs {}", to_f64(s), to_f64(a[i * n + j]));
            }
        }
    }

    #[test]
    fn l_is_lower_triangular() {
        let n = 4;
        let l = reference(&spd_matrix(n), n);
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(l[i * n + j], 0);
            }
        }
    }

    #[test]
    fn workload_runs_correctly() {
        let w = cholesky(3);
        let r = crate::WorkloadRun::with_pes(2).run(&w).unwrap();
        assert!(r.correct, "{:?}", r.mismatches);
    }
}
