//! Matrix multiplication benchmark (thesis Table 6.2 / Fig. 6.8).
//!
//! `mc = ma × mb` over `n × n` integer matrices; rows computed in
//! parallel by a replicated `par` (one context chain per row), then a
//! sequential checksum reduction reports to the host.

use crate::data::Lcg;
use crate::Workload;

/// Build the matrix multiplication workload for `n × n` matrices.
///
/// # Panics
///
/// Panics unless `1 ≤ n ≤ 16`.
#[must_use]
pub fn matmul(n: usize) -> Workload {
    assert!((1..=16).contains(&n), "keep the simulated problem laptop-sized");
    let nn = n * n;
    let source = format!(
        "\
var ma[{nn}], mb[{nn}], mc[{nn}], part[{n}]:
var i, chk:
seq
  par i = [0 for {n}]
    var j, k, s, rowsum:
    seq
      rowsum := 0
      seq j = [0 for {n}]
        seq
          s := 0
          seq k = [0 for {n}]
            s := s + ma[(i * {n}) + k] * mb[(k * {n}) + j]
          mc[(i * {n}) + j] := s
          rowsum := rowsum + s
      part[i] := rowsum
  chk := 0
  seq i = [0 for {n}]
    chk := chk + part[i]
  screen ! chk
"
    );
    let mut rng = Lcg::new(0x4d61_7472); // "Matr"
    let ma = rng.vec(nn, -9, 10);
    let mb = rng.vec(nn, -9, 10);
    let mc = reference(&ma, &mb, n);
    let chk = mc.iter().fold(0i32, |a, &v| a.wrapping_add(v));
    Workload {
        name: format!("matmul {n}x{n}"),
        source,
        inputs: vec![("ma".into(), ma), ("mb".into(), mb)],
        expected: vec![("mc".into(), mc)],
        expected_output: vec![chk],
    }
}

/// Reference product with the machine's wrapping semantics.
#[must_use]
pub fn reference(a: &[i32], b: &[i32], n: usize) -> Vec<i32> {
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0i32;
            for k in 0..n {
                s = s.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            c[i * n + j] = s;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_identity() {
        let n = 3;
        let mut ident = vec![0; 9];
        for i in 0..n {
            ident[i * n + i] = 1;
        }
        let a: Vec<i32> = (1..=9).collect();
        assert_eq!(reference(&a, &ident, n), a);
    }

    #[test]
    fn workload_is_consistent() {
        let w = matmul(4);
        assert_eq!(w.inputs[0].1.len(), 16);
        assert_eq!(w.expected[0].1.len(), 16);
        let chk: i32 = w.expected[0].1.iter().fold(0, |a, &v| a.wrapping_add(v));
        assert_eq!(w.expected_output, vec![chk]);
    }

    #[test]
    fn runs_correctly_on_two_pes() {
        let w = matmul(3);
        let r = crate::WorkloadRun::with_pes(2).run(&w).unwrap();
        assert!(r.correct, "{:?}", r.mismatches);
    }
}
