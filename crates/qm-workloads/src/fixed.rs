//! Q6 fixed-point arithmetic shared by the OCCAM benchmarks and their
//! Rust references.
//!
//! Values are `i32` words scaled by 2⁶ = 64: enough headroom that a
//! 16-point FFT over inputs in ±2.0 never overflows 32 bits, and small
//! enough that Q6×Q6 products stay exact. The OCCAM programs implement
//! *exactly* these operations (`>> 6` after multiply, Newton integer
//! square root), so simulator results compare bit-for-bit.

/// Fraction bits.
pub const Q: u32 = 6;
/// The fixed-point one.
pub const ONE: i32 = 1 << Q;

/// Convert a float to Q6 (round to nearest).
#[must_use]
pub fn from_f64(x: f64) -> i32 {
    #[allow(clippy::cast_possible_truncation)]
    {
        (x * f64::from(ONE)).round() as i32
    }
}

/// Convert Q6 to a float (for diagnostics only).
#[must_use]
pub fn to_f64(x: i32) -> f64 {
    f64::from(x) / f64::from(ONE)
}

/// Q6 multiply: `(a*b) >> 6` with arithmetic shift, matching the OCCAM
/// `(a * b) >> 6`.
#[must_use]
pub fn mul(a: i32, b: i32) -> i32 {
    a.wrapping_mul(b) >> Q
}

/// Q6 divide: `(a << 6) / b`, matching the OCCAM `(a << 6) / b`
/// (quotient truncates toward zero like the `div` instruction).
#[must_use]
pub fn div(a: i32, b: i32) -> i32 {
    if b == 0 {
        0
    } else {
        (a << Q).wrapping_div(b)
    }
}

/// Integer square root by Newton's method — the same loop the OCCAM
/// `isqrt` procedure runs:
///
/// ```text
/// r := x
/// while r * r > x
///   r := (r + x / r) / 2
/// ```
///
/// Returns 0 for non-positive inputs.
#[must_use]
pub fn isqrt(x: i32) -> i32 {
    if x <= 0 {
        return 0;
    }
    let mut r = x;
    while r > x / r {
        // Wrapping add matches the machine's `plus` instruction exactly
        // (only reachable for inputs near i32::MAX).
        r = r.wrapping_add(x / r) / 2;
    }
    r
}

/// Q6 square root: `isqrt(x << 6)`, matching the OCCAM benchmarks.
#[must_use]
pub fn sqrt(x: i32) -> i32 {
    isqrt(x << Q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(ONE, 64);
        assert_eq!(from_f64(1.0), 64);
        assert_eq!(from_f64(-0.5), -32);
        assert!((to_f64(from_f64(3.25)) - 3.25).abs() < 1e-9);
    }

    #[test]
    fn multiply_and_divide() {
        let a = from_f64(2.5);
        let b = from_f64(4.0);
        assert_eq!(mul(a, b), from_f64(10.0));
        assert_eq!(div(mul(a, b), b), a);
        assert_eq!(div(ONE, 0), 0, "division by zero yields zero like the ISA");
    }

    #[test]
    fn isqrt_is_exact_floor() {
        for x in 0..5000 {
            let r = isqrt(x);
            assert!(r * r <= x, "x={x} r={r}");
            assert!((r + 1) * (r + 1) > x, "x={x} r={r}");
        }
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(-5), 0);
        assert_eq!(isqrt(1 << 30), 32768);
    }

    #[test]
    fn fixed_sqrt_matches_float_closely() {
        for v in [1.0, 2.0, 4.0, 9.0, 16.0, 100.0] {
            let got = to_f64(sqrt(from_f64(v)));
            assert!((got - v.sqrt()).abs() < 0.15, "sqrt({v}) ≈ {got}");
        }
    }
}
