//! The four thesis benchmark programs (Chapter 6): matrix multiplication,
//! Fast Fourier Transform, Cholesky decomposition and the congruence
//! transformation — each as an OCCAM source (compiled by [`qm_occam`] and
//! executed on [`qm_sim`]) plus a bit-exact Rust reference used to verify
//! the simulated run.
//!
//! The thesis does not reproduce its benchmark sources; these are our own
//! implementations of the four named algorithms (DESIGN.md substitution
//! #3), written to expose the same kind of parallelism the thesis
//! describes (row/column-parallel `par` replication over contexts).
//! The ISA is a 32-bit integer machine, so FFT and Cholesky use Q6
//! fixed-point arithmetic; the references implement the *identical*
//! fixed-point operations so results compare exactly.
//!
//! ```
//! use qm_workloads::{matmul, WorkloadRun};
//! let w = matmul(4);
//! let r = WorkloadRun::with_pes(2).run(&w).unwrap();
//! assert!(r.correct);
//! ```

pub mod cholesky;
pub mod congruence;
pub mod data;
pub mod fft;
pub mod fixed;
pub mod matmul;
pub mod reduction;
pub mod runner;

pub use cholesky::cholesky;
pub use congruence::congruence;
pub use fft::fft;
pub use matmul::matmul;
pub use reduction::reduction;
pub use runner::{speedup_curve, BenchResult, CurvePoint, WorkloadError, WorkloadRun};

/// A benchmark: OCCAM source, host-initialised input arrays, and the
/// expected contents of the result arrays.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name.
    pub name: String,
    /// OCCAM source text.
    pub source: String,
    /// `(array base name, contents)` poked into global memory before the
    /// run (the thesis host loads programs and data the same way).
    pub inputs: Vec<(String, Vec<i32>)>,
    /// `(array base name, contents)` that must hold after the run.
    pub expected: Vec<(String, Vec<i32>)>,
    /// Values the program must send to the host channel (checksums).
    pub expected_output: Vec<i32>,
}
