//! Integration tests against a real listening server: routing, error
//! envelopes, job lifecycle and health counters over actual sockets.

use qm_core::json::{parse, JsonValue};
use qm_serve::http::request;
use qm_serve::{ServeConfig, Server};

fn start() -> (Server, String) {
    let server = Server::start(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    (server, addr)
}

fn wait_done(addr: &str, id: u64) -> JsonValue {
    for _ in 0..3000 {
        let (status, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "").unwrap();
        assert_eq!(status, 200, "{body}");
        let v = parse(&body).unwrap();
        let data = v.get("data").cloned().unwrap();
        match data.get("status").and_then(JsonValue::as_str) {
            Some("done" | "failed") => return data,
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    panic!("job {id} did not settle");
}

fn submit(addr: &str, body: &str) -> (u16, JsonValue) {
    let (status, text) = request(addr, "POST", "/v1/jobs", body).unwrap();
    (status, parse(&text).unwrap())
}

#[test]
fn assembly_job_round_trips_over_http() {
    let (server, addr) = start();
    let (status, v) =
        submit(&addr, r#"{"assembly":"main: send+3 #0,#7\n trap #3,#0","verify":"warn"}"#);
    assert_eq!(status, 202, "{v:?}");
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("job"));
    let id = v.get("data").and_then(|d| d.get("id")).and_then(JsonValue::as_u64).unwrap();

    let done = wait_done(&addr, id);
    assert_eq!(done.get("status").and_then(JsonValue::as_str), Some("done"), "{done:?}");
    let result = done.get("result").expect("result");
    assert!(result.get("cycles").and_then(JsonValue::as_u64).unwrap() > 0);
    let outcome = result.get("outcome").expect("embedded run_outcome body");
    assert_eq!(
        outcome.get("output"),
        Some(&JsonValue::Arr(vec![JsonValue::Num(7.0)])),
        "host output over the wire"
    );
    // Raw programs have no expectations to check.
    assert_eq!(result.get("correct"), Some(&JsonValue::Null));
    // verify=warn embeds the full verify_report envelope.
    let verify = result.get("verify").expect("verify report");
    assert_eq!(verify.get("kind").and_then(JsonValue::as_str), Some("verify_report"));
    server.shutdown();
}

#[test]
fn error_envelopes_cover_the_failure_paths() {
    let (server, addr) = start();

    let (status, v) = submit(&addr, "{not json");
    assert_eq!(status, 400);
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("error"));
    assert_eq!(
        v.get("data").and_then(|d| d.get("code")).and_then(JsonValue::as_str),
        Some("bad_request")
    );

    let (status, body) = request(&addr, "GET", "/v1/jobs/999", "").unwrap();
    assert_eq!(status, 404, "{body}");
    let (status, body) = request(&addr, "GET", "/v1/nope", "").unwrap();
    assert_eq!(status, 404, "{body}");
    let (status, body) = request(&addr, "POST", "/v1/health", "").unwrap();
    assert_eq!(status, 405, "{body}");

    // A compile failure surfaces on the job, not the submission.
    let (status, v) = submit(&addr, r#"{"occam":"this is not occam"}"#);
    assert_eq!(status, 202, "{v:?}");
    let id = v.get("data").and_then(|d| d.get("id")).and_then(JsonValue::as_u64).unwrap();
    let done = wait_done(&addr, id);
    assert_eq!(done.get("status").and_then(JsonValue::as_str), Some("failed"));
    assert_eq!(
        done.get("error").and_then(|e| e.get("code")).and_then(JsonValue::as_str),
        Some("compile_error"),
        "{done:?}"
    );
    server.shutdown();
}

#[test]
fn health_reports_progress_and_cache_counters() {
    let (server, addr) = start();
    let (status, body) = request(&addr, "GET", "/v1/health", "").unwrap();
    assert_eq!(status, 200);
    let v = parse(&body).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("health"));
    let data = v.get("data").unwrap();
    assert_eq!(data.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(
        data.get("jobs").and_then(|jobs| jobs.get("accepted")).and_then(JsonValue::as_u64),
        Some(0)
    );

    let (_, v) = submit(&addr, r#"{"workload":"reduction","param":8}"#);
    let id = v.get("data").and_then(|d| d.get("id")).and_then(JsonValue::as_u64).unwrap();
    wait_done(&addr, id);
    let (_, body) = request(&addr, "GET", "/v1/health", "").unwrap();
    let v = parse(&body).unwrap();
    let data = v.get("data").unwrap();
    assert_eq!(
        data.get("jobs").and_then(|jobs| jobs.get("done")).and_then(JsonValue::as_u64),
        Some(1),
        "{body}"
    );
    assert_eq!(
        data.get("cache").and_then(|c| c.get("misses")).and_then(JsonValue::as_u64),
        Some(1),
        "{body}"
    );
    server.shutdown();
}

#[test]
fn admission_control_rejects_with_429() {
    // Zero caps make the rejection paths deterministic over HTTP (the
    // counting logic itself is unit-tested in qm_serve::jobs, where no
    // worker can drain the queue mid-assertion).
    let cfg = ServeConfig { tenant_cap: 0, ..ServeConfig::default() };
    let server = Server::start(&cfg).expect("bind");
    let (status, v) = submit(&server.addr().to_string(), r#"{"workload":"matmul","param":4}"#);
    assert_eq!(status, 429, "{v:?}");
    assert_eq!(
        v.get("data").and_then(|d| d.get("code")).and_then(JsonValue::as_str),
        Some("tenant_busy")
    );
    server.shutdown();

    let cfg = ServeConfig { queue_cap: 0, ..ServeConfig::default() };
    let server = Server::start(&cfg).expect("bind");
    let (status, v) = submit(&server.addr().to_string(), r#"{"workload":"matmul","param":4}"#);
    assert_eq!(status, 429, "{v:?}");
    assert_eq!(
        v.get("data").and_then(|d| d.get("code")).and_then(JsonValue::as_str),
        Some("queue_full")
    );
    server.shutdown();
}
