//! The `qm-api/v1` request/response surface: job-submission parsing and
//! the `job` / `health` / `error` envelopes. Everything the wire carries
//! is specified in `docs/API.md`; this module is the single place those
//! shapes are produced and consumed.

use qm_core::json::{parse, Envelope, JsonValue};
use qm_sim::Backend;
use qm_verify::VerifyLevel;
use qm_workloads::Workload;

/// Hard cap on simulated PEs per job (matches `SystemConfig::with_pes`).
pub const MAX_PES: usize = 1024;

/// What a job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Program {
    /// OCCAM source text, compiled server-side (through the cache).
    Occam(String),
    /// Queue-machine assembly text, assembled server-side.
    Assembly(String),
    /// A bundled named workload with its size parameter — runs with
    /// input initialisation and result verification, like
    /// `qm_workloads::WorkloadRun`.
    Workload {
        /// Bundled workload name (`matmul`, `fft`, `cholesky`,
        /// `congruence`, `reduction`).
        name: String,
        /// Size parameter passed to the workload constructor.
        param: usize,
    },
}

/// One validated job submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Program to run.
    pub program: Program,
    /// Tenant identity (fair-share accounting key).
    pub tenant: String,
    /// Simulated PEs.
    pub pes: usize,
    /// Host shards for the run loop (`0`/`1` = serial).
    pub shards: usize,
    /// Verification policy applied to the (possibly cached) report.
    pub verify: VerifyLevel,
    /// Execution backend (`interp` by default; `translated` demands
    /// `"verify":"strict"` — the verified-fast contract).
    pub backend: Backend,
    /// Per-job cycle budget override (`None` = server default).
    pub max_cycles: Option<u64>,
    /// Per-job preemption slice override (`None` = server default).
    pub slice_cycles: Option<u64>,
}

/// A request rejection: HTTP status plus a machine-readable code, ready
/// to render as an `error` envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable code (`docs/API.md` lists them).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Construct an error.
    #[must_use]
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ApiError { status, code, message: message.into() }
    }

    /// Render as the `qm-api/v1` `error` envelope.
    #[must_use]
    pub fn to_json(&self) -> String {
        Envelope::render("error", |j| {
            j.str_field("code", self.code);
            j.str_field("message", &self.message);
        })
    }
}

fn bad(message: impl Into<String>) -> ApiError {
    ApiError::new(400, "bad_request", message)
}

/// Instantiate a bundled workload by name.
///
/// # Errors
///
/// [`ApiError`] (`bad_request`) for unknown names.
pub fn bundled_workload(name: &str, param: usize) -> Result<Workload, ApiError> {
    match name {
        "matmul" => Ok(qm_workloads::matmul(param)),
        "fft" => Ok(qm_workloads::fft(param)),
        "cholesky" => Ok(qm_workloads::cholesky(param)),
        "congruence" => Ok(qm_workloads::congruence(param)),
        "reduction" => Ok(qm_workloads::reduction(param)),
        other => Err(bad(format!(
            "unknown workload {other:?} (expected matmul, fft, cholesky, congruence or reduction)"
        ))),
    }
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, ApiError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(n) => {
            n.as_u64().map(Some).ok_or_else(|| bad(format!("{key} must be a non-negative integer")))
        }
    }
}

/// Parse and validate a `POST /v1/jobs` body.
///
/// # Errors
///
/// [`ApiError`] (`bad_request`) for unparseable JSON, missing or
/// conflicting program fields, out-of-range knobs or unknown workloads.
pub fn parse_job(body: &[u8]) -> Result<JobSpec, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    let v = parse(text).map_err(|e| bad(format!("body is not JSON: {e}")))?;
    if !matches!(v, JsonValue::Obj(_)) {
        return Err(bad("body must be a JSON object"));
    }

    let occam = v.get("occam").and_then(JsonValue::as_str);
    let assembly = v.get("assembly").and_then(JsonValue::as_str);
    let workload = v.get("workload").and_then(JsonValue::as_str);
    let program = match (occam, assembly, workload) {
        (Some(src), None, None) => Program::Occam(src.to_string()),
        (None, Some(src), None) => Program::Assembly(src.to_string()),
        (None, None, Some(name)) => {
            let param =
                opt_u64(&v, "param")?.ok_or_else(|| bad("workload jobs need a \"param\" size"))?;
            usize::try_from(param).map_err(|_| bad("param out of range"))?;
            #[allow(clippy::cast_possible_truncation)]
            let param = param as usize;
            // Validate the name eagerly so submission, not execution,
            // reports the typo.
            bundled_workload(name, param)?;
            Program::Workload { name: name.to_string(), param }
        }
        (None, None, None) => {
            return Err(bad("provide exactly one of \"occam\", \"assembly\" or \"workload\""));
        }
        _ => return Err(bad("\"occam\", \"assembly\" and \"workload\" are mutually exclusive")),
    };

    let tenant = match v.get("tenant") {
        None => "anonymous".to_string(),
        Some(t) => {
            let t = t.as_str().ok_or_else(|| bad("tenant must be a string"))?;
            if t.is_empty() || t.len() > 64 {
                return Err(bad("tenant must be 1..=64 bytes"));
            }
            t.to_string()
        }
    };

    let pes = opt_u64(&v, "pes")?.unwrap_or(1);
    if !(1..=MAX_PES as u64).contains(&pes) {
        return Err(bad(format!("pes must be 1..={MAX_PES}")));
    }
    let shards = opt_u64(&v, "shards")?.unwrap_or(0);
    if shards > 64 {
        return Err(bad("shards must be 0..=64"));
    }

    let verify = match v.get("verify") {
        None => VerifyLevel::Strict,
        Some(level) => match level.as_str() {
            Some("off") => VerifyLevel::Off,
            Some("warn") => VerifyLevel::Warn,
            Some("strict") => VerifyLevel::Strict,
            _ => return Err(bad("verify must be \"off\", \"warn\" or \"strict\"")),
        },
    };

    let backend = match v.get("backend") {
        None => Backend::Interp,
        Some(b) => b
            .as_str()
            .and_then(Backend::parse)
            .ok_or_else(|| bad("backend must be \"interp\" or \"translated\""))?,
    };
    if backend == Backend::Translated && verify != VerifyLevel::Strict {
        return Err(bad(
            "the translated backend is verified-fast: it requires \"verify\":\"strict\"",
        ));
    }

    let max_cycles = opt_u64(&v, "max_cycles")?;
    if max_cycles == Some(0) {
        return Err(bad("max_cycles must be positive"));
    }
    let slice_cycles = opt_u64(&v, "slice_cycles")?;

    #[allow(clippy::cast_possible_truncation)]
    Ok(JobSpec {
        program,
        tenant,
        pes: pes as usize,
        shards: shards as usize,
        verify,
        backend,
        max_cycles,
        slice_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_workload_job_with_defaults() {
        let spec = parse_job(br#"{"workload":"matmul","param":4}"#).unwrap();
        assert_eq!(spec.program, Program::Workload { name: "matmul".into(), param: 4 });
        assert_eq!(spec.tenant, "anonymous");
        assert_eq!(spec.pes, 1);
        assert_eq!(spec.verify, VerifyLevel::Strict);
        assert_eq!(spec.backend, Backend::Interp);
        assert_eq!(spec.max_cycles, None);
    }

    #[test]
    fn backend_knob_parses_and_rides_the_strict_gate() {
        let spec = parse_job(br#"{"workload":"matmul","param":4,"backend":"translated"}"#).unwrap();
        assert_eq!(spec.backend, Backend::Translated);
        assert_eq!(spec.verify, VerifyLevel::Strict, "defaulted verify satisfies the gate");
        let spec = parse_job(br#"{"assembly":"x","backend":"interp","verify":"off"}"#).unwrap();
        assert_eq!(spec.backend, Backend::Interp);
    }

    #[test]
    fn parses_an_occam_job_with_knobs() {
        let spec = parse_job(
            br#"{"occam":"seq\n  skip","tenant":"team-a","pes":8,"verify":"warn","max_cycles":1000,"slice_cycles":50}"#,
        )
        .unwrap();
        assert!(matches!(spec.program, Program::Occam(_)));
        assert_eq!(spec.tenant, "team-a");
        assert_eq!(spec.pes, 8);
        assert_eq!(spec.verify, VerifyLevel::Warn);
        assert_eq!(spec.max_cycles, Some(1000));
        assert_eq!(spec.slice_cycles, Some(50));
    }

    #[test]
    fn rejects_bad_submissions() {
        for (body, want) in [
            (&br#"not json"#[..], "not JSON"),
            (br#"[]"#, "must be a JSON object"),
            (br#"{}"#, "exactly one of"),
            (br#"{"occam":"x","assembly":"y"}"#, "mutually exclusive"),
            (br#"{"workload":"matmul"}"#, "need a \"param\""),
            (br#"{"workload":"quicksort","param":4}"#, "unknown workload"),
            (br#"{"assembly":"x","pes":0}"#, "pes must be"),
            (br#"{"assembly":"x","pes":2000}"#, "pes must be"),
            (br#"{"assembly":"x","verify":"maybe"}"#, "verify must be"),
            (br#"{"assembly":"x","tenant":""}"#, "tenant must be"),
            (br#"{"assembly":"x","max_cycles":0}"#, "must be positive"),
            (br#"{"assembly":"x","backend":"jit"}"#, "backend must be"),
            (br#"{"assembly":"x","backend":"translated","verify":"warn"}"#, "verified-fast"),
        ] {
            let err = parse_job(body).unwrap_err();
            assert_eq!(err.status, 400, "{want}");
            assert!(err.message.contains(want), "{}: missing {want:?}", err.message);
        }
    }

    #[test]
    fn error_envelope_shape() {
        let e = ApiError::new(429, "queue_full", "the job queue is full");
        assert_eq!(
            e.to_json(),
            r#"{"schema":"qm-api/v1","kind":"error","data":{"code":"queue_full","message":"the job queue is full"}}"#
        );
    }
}
