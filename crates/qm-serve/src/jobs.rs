//! Job lifecycle: a bounded FIFO queue with per-tenant in-flight caps,
//! and the time-sliced executor that runs one preemption slice per
//! claim.
//!
//! Preemption rides the snapshot subsystem's determinism contract
//! (`docs/DETERMINISM.md`): a paused job is captured with
//! [`Snapshot::capture`], encoded to bytes, and requeued at the FIFO
//! tail; the next worker (any worker — snapshots are plain data)
//! decodes, [`System::restore`]s and continues. Because restore-then-run
//! is bit-identical to an uninterrupted run, a job's result — cycle
//! count, outputs, architectural [`Snapshot::state_digest`] — is
//! independent of how often it was preempted or which threads ran its
//! slices. The serve smoke test asserts exactly that.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

use qm_sim::config::SystemConfig;
use qm_sim::snapshot::Snapshot;
use qm_sim::system::{RunOutcome, RunStatus, System};
use qm_verify::{verify_object, VerifyLevel, VerifyOptions};
use qm_workloads::{Workload, WorkloadRun};

use crate::api::{bundled_workload, ApiError, JobSpec, Program};
use crate::cache::{self, CompileCache, Entry};

/// Server-wide execution defaults (per-job overrides in [`JobSpec`]).
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Preemption slice in cycles; `0` disables slicing (each job runs
    /// to completion or budget in one claim).
    pub slice_cycles: u64,
    /// Watchdog cycle budget: a job still running at this simulated
    /// cycle fails with `budget_exhausted`.
    pub max_cycles: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { slice_cycles: 0, max_cycles: 100_000_000 }
    }
}

/// Job identifier, allocated sequentially from 1.
pub type JobId = u64;

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing a slice right now.
    Running,
    /// Preempted mid-run; snapshot held, waiting at the FIFO tail.
    Paused,
    /// Finished; `result` is populated.
    Done,
    /// Rejected or crashed; `error` is populated.
    Failed,
}

impl Status {
    /// Wire name (`docs/API.md`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Paused => "paused",
            Status::Done => "done",
            Status::Failed => "failed",
        }
    }
}

/// A finished job's payload.
#[derive(Debug)]
pub struct JobResult {
    /// The simulator outcome.
    pub outcome: RunOutcome,
    /// Architectural state digest at completion.
    pub state_digest: u64,
    /// Workload jobs: whether results matched expectations.
    pub correct: Option<bool>,
    /// Workload jobs: mismatch descriptions (empty when correct).
    pub mismatches: Vec<String>,
    /// The `verify_report` envelope (absent when verification was off).
    pub verify_json: Option<String>,
}

/// Saved state of a preempted job.
#[derive(Debug)]
pub struct Continuation {
    snapshot: Vec<u8>,
    /// Cycle the next slice resumes at (the pause point).
    resume_at: u64,
    /// Workload jobs carry their workload and compile-cache entry so the
    /// final slice can evaluate correctness.
    workload: Option<(Workload, std::sync::Arc<Entry>)>,
    verify_json: Option<String>,
}

/// One executor step's verdict.
#[derive(Debug)]
pub enum Step {
    /// Ran to completion.
    Done(JobResult),
    /// Preempted; requeue with this continuation.
    Paused(Continuation),
    /// Failed with a stable error code and a message.
    Failed(&'static str, String),
}

/// What [`execute_slice`] hands back to the queue.
#[derive(Debug)]
pub struct StepReport {
    /// The verdict.
    pub step: Step,
    /// Set on the first slice: whether the compile cache answered.
    pub cache_hit: Option<bool>,
}

/// A claimed unit of work: the job's spec and, for resumed jobs, its
/// continuation.
#[derive(Debug)]
pub struct WorkUnit {
    /// Job id (for logging; completion goes through the queue).
    pub id: JobId,
    spec: JobSpec,
    cont: Option<Continuation>,
}

/// One tracked job.
#[derive(Debug)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// The validated submission.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub status: Status,
    /// Executor slices consumed so far.
    pub slices: u64,
    /// Whether the compile cache answered the first slice.
    pub cache_hit: bool,
    /// Populated when `status == Done`.
    pub result: Option<JobResult>,
    /// Populated when `status == Failed` (code, message).
    pub error: Option<(&'static str, String)>,
    cont: Option<Continuation>,
}

/// Finished jobs kept for `GET /v1/jobs/:id` before eviction.
const RETAIN_FINISHED: usize = 1024;

#[derive(Debug, Default)]
struct QueueState {
    jobs: HashMap<JobId, Job>,
    fifo: VecDeque<JobId>,
    finished: VecDeque<JobId>,
    inflight: HashMap<String, usize>,
    next_id: JobId,
    accepted: u64,
    done: u64,
    failed: u64,
    translated: u64,
    shutdown: bool,
}

/// Queue counter snapshot for `GET /v1/health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs waiting for a worker (fresh or preempted).
    pub queued: u64,
    /// Jobs executing a slice right now.
    pub running: u64,
    /// Jobs accepted since startup.
    pub accepted: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Successful runs that executed on the translated backend.
    pub translated: u64,
}

/// The bounded, fair-share job queue.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    queue_cap: usize,
    tenant_cap: usize,
}

impl JobQueue {
    /// A queue admitting at most `queue_cap` waiting jobs, at most
    /// `tenant_cap` of them in flight per tenant.
    #[must_use]
    pub fn new(queue_cap: usize, tenant_cap: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            queue_cap,
            tenant_cap,
        }
    }

    /// Admit a job, or reject with `429 queue_full` / `429 tenant_busy`.
    /// Preempted jobs re-enter the FIFO without passing these checks —
    /// admission control happens once, at submission.
    ///
    /// # Errors
    ///
    /// [`ApiError`] when a capacity bound would be exceeded.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ApiError> {
        let mut s = self.state.lock().expect("queue lock");
        if s.shutdown {
            return Err(ApiError::new(503, "shutting_down", "the server is shutting down"));
        }
        if s.fifo.len() >= self.queue_cap {
            return Err(ApiError::new(
                429,
                "queue_full",
                format!("the job queue is full ({} waiting)", s.fifo.len()),
            ));
        }
        let inflight = s.inflight.get(&spec.tenant).copied().unwrap_or(0);
        if inflight >= self.tenant_cap {
            return Err(ApiError::new(
                429,
                "tenant_busy",
                format!("tenant {:?} already has {inflight} jobs in flight", spec.tenant),
            ));
        }
        s.next_id += 1;
        let id = s.next_id;
        s.accepted += 1;
        *s.inflight.entry(spec.tenant.clone()).or_insert(0) += 1;
        s.jobs.insert(
            id,
            Job {
                id,
                spec,
                status: Status::Queued,
                slices: 0,
                cache_hit: false,
                result: None,
                error: None,
                cont: None,
            },
        );
        s.fifo.push_back(id);
        drop(s);
        self.cv.notify_one();
        Ok(id)
    }

    /// Block until a job is available (returning its work unit) or the
    /// queue shuts down (returning `None`).
    pub fn claim(&self) -> Option<WorkUnit> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(id) = s.fifo.pop_front() {
                let job = s.jobs.get_mut(&id).expect("queued job exists");
                job.status = Status::Running;
                let cont = job.cont.take();
                let spec = job.spec.clone();
                return Some(WorkUnit { id, spec, cont });
            }
            if s.shutdown {
                return None;
            }
            s = self.cv.wait(s).expect("queue lock");
        }
    }

    /// Record the outcome of one executed slice.
    pub fn complete(&self, id: JobId, report: StepReport) {
        let mut s = self.state.lock().expect("queue lock");
        let job = s.jobs.get_mut(&id).expect("running job exists");
        job.slices += 1;
        if let Some(hit) = report.cache_hit {
            job.cache_hit = hit;
        }
        let tenant = job.spec.tenant.clone();
        let finished = match report.step {
            Step::Paused(cont) => {
                job.status = Status::Paused;
                job.cont = Some(cont);
                s.fifo.push_back(id);
                false
            }
            Step::Done(result) => {
                let translated = job.spec.backend == qm_sim::Backend::Translated;
                job.status = Status::Done;
                job.result = Some(result);
                s.done += 1;
                if translated {
                    s.translated += 1;
                }
                true
            }
            Step::Failed(code, message) => {
                job.status = Status::Failed;
                job.error = Some((code, message));
                s.failed += 1;
                true
            }
        };
        if finished {
            if let Some(n) = s.inflight.get_mut(&tenant) {
                *n -= 1;
                if *n == 0 {
                    s.inflight.remove(&tenant);
                }
            }
            s.finished.push_back(id);
            while s.finished.len() > RETAIN_FINISHED {
                if let Some(old) = s.finished.pop_front() {
                    s.jobs.remove(&old);
                }
            }
        }
        drop(s);
        self.cv.notify_one();
    }

    /// Run `f` over the job, if it is still tracked.
    pub fn with_job<R>(&self, id: JobId, f: impl FnOnce(&Job) -> R) -> Option<R> {
        let s = self.state.lock().expect("queue lock");
        s.jobs.get(&id).map(f)
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let s = self.state.lock().expect("queue lock");
        let running = s.jobs.values().filter(|j| j.status == Status::Running).count() as u64;
        QueueStats {
            queued: s.fifo.len() as u64,
            running,
            accepted: s.accepted,
            done: s.done,
            failed: s.failed,
            translated: s.translated,
        }
    }

    /// Wake every worker and make further `claim`s return `None`.
    /// In-flight slices finish; queued jobs stay queued.
    pub fn shutdown(&self) {
        self.state.lock().expect("queue lock").shutdown = true;
        self.cv.notify_all();
    }
}

fn system_config(spec: &JobSpec) -> SystemConfig {
    SystemConfig::with_pes(spec.pes)
}

/// `build_entry`'s success: the cache entry, the hit flag, and the
/// bundled workload (when the job named one) for reference checking.
type Built = (std::sync::Arc<Entry>, bool, Option<Workload>);

/// Compile (or assemble) through the cache, producing the entry and the
/// hit flag.
fn build_entry(spec: &JobSpec, cache: &CompileCache) -> Result<Built, (&'static str, String)> {
    let opts = qm_occam::Options::default();
    let page_words = system_config(spec).queue_page_words;
    let verify_opts = VerifyOptions { page_words };
    match &spec.program {
        Program::Workload { name, param } => {
            let w = bundled_workload(name, *param).map_err(|e| ("bad_request", e.message))?;
            let k = cache::source_key(&w.source, &opts, &verify_opts);
            let (entry, hit) = cache
                .lookup_or_fill(k, || compile_occam(&w.source, &opts, &verify_opts))
                .map_err(|m| ("compile_error", m))?;
            Ok((entry, hit, Some(w)))
        }
        Program::Occam(src) => {
            let k = cache::key(&spec.program, &opts, &verify_opts);
            let (entry, hit) = cache
                .lookup_or_fill(k, || compile_occam(src, &opts, &verify_opts))
                .map_err(|m| ("compile_error", m))?;
            Ok((entry, hit, None))
        }
        Program::Assembly(src) => {
            let k = cache::key(&spec.program, &opts, &verify_opts);
            let (entry, hit) = cache
                .lookup_or_fill(k, || {
                    let object = qm_isa::asm::assemble(src).map_err(|e| e.to_string())?;
                    let report = verify_object(&object, &verify_opts);
                    Ok(Entry {
                        verify_errors: report.errors().count() > 0,
                        verify_json: report.to_json(),
                        syms: HashMap::new(),
                        object,
                    })
                })
                .map_err(|m| ("compile_error", m))?;
            Ok((entry, hit, None))
        }
    }
}

fn compile_occam(
    src: &str,
    opts: &qm_occam::Options,
    verify_opts: &VerifyOptions,
) -> Result<Entry, String> {
    let compiled = qm_occam::compile(src, opts).map_err(|e| e.to_string())?;
    let report = verify_object(&compiled.object, verify_opts);
    Ok(Entry {
        verify_errors: report.errors().count() > 0,
        verify_json: report.to_json(),
        syms: compiled.syms,
        object: compiled.object,
    })
}

/// Execute one preemption slice of `unit`: build or restore the system,
/// run until the slice limit, and report done / paused / failed.
#[must_use]
pub fn execute_slice(unit: WorkUnit, cache: &CompileCache, defaults: &ExecConfig) -> StepReport {
    let spec = &unit.spec;
    let slice = spec.slice_cycles.unwrap_or(defaults.slice_cycles);
    let budget = spec.max_cycles.unwrap_or(defaults.max_cycles);

    // Build (first slice) or restore (resumed slice) the system.
    let (mut sys, resume_at, workload, verify_json, cache_hit) = match unit.cont {
        None => {
            let (entry, hit, workload) = match build_entry(spec, cache) {
                Ok(v) => v,
                Err((code, msg)) => {
                    return StepReport { step: Step::Failed(code, msg), cache_hit: None };
                }
            };
            if spec.verify == VerifyLevel::Strict && entry.verify_errors {
                return StepReport {
                    step: Step::Failed(
                        "verify_rejected",
                        "strict verification found error-severity findings (see the \
                         verify report; resubmit with \"verify\":\"warn\" to run anyway)"
                            .to_string(),
                    ),
                    cache_hit: Some(hit),
                };
            }
            let verify_json = (spec.verify != VerifyLevel::Off).then(|| entry.verify_json.clone());
            let built = if let Some(w) = &workload {
                let run = WorkloadRun {
                    cfg: system_config(spec),
                    shards: spec.shards,
                    backend: spec.backend,
                    ..WorkloadRun::default()
                };
                run.prepare_compiled(w, &entry.object, &entry.syms).map_err(|e| e.to_string())
            } else {
                let mut builder = qm_sim::Simulation::builder()
                    .config(system_config(spec))
                    .object(&entry.object)
                    .verify(VerifyLevel::Off);
                if spec.backend == qm_sim::Backend::Translated {
                    // The builder's verified-fast gate wants Strict; the
                    // cached report already proved the program clean
                    // (strict-mode rejection above), so this re-check is
                    // belt-and-braces, not policy.
                    builder =
                        builder.verify(VerifyLevel::Strict).backend(qm_sim::Backend::Translated);
                }
                if spec.shards > 1 {
                    builder = builder.shards(spec.shards);
                }
                builder.build().map_err(|e| e.to_string())
            };
            match built {
                Ok(sys) => (sys, 0, workload.map(|w| (w, entry)), verify_json, Some(hit)),
                Err(msg) => {
                    return StepReport {
                        step: Step::Failed("sim_error", msg),
                        cache_hit: Some(hit),
                    };
                }
            }
        }
        Some(cont) => {
            let restored = Snapshot::decode(&cont.snapshot)
                .map_err(|e| e.to_string())
                .and_then(|snap| System::restore(&snap).map_err(|e| e.to_string()));
            match restored {
                Ok(mut sys) => {
                    // Execution backend is a host knob, not machine
                    // state — snapshots don't carry it, so every resumed
                    // slice re-applies the job's choice.
                    sys.set_backend(spec.backend);
                    (sys, cont.resume_at, cont.workload, cont.verify_json, None)
                }
                Err(msg) => {
                    return StepReport {
                        step: Step::Failed("snapshot_error", msg),
                        cache_hit: None,
                    };
                }
            }
        }
    };

    let limit = if slice == 0 { budget } else { budget.min(resume_at.saturating_add(slice)) };
    let step = match sys.run_until(limit) {
        Err(e) => Step::Failed("sim_error", e.to_string()),
        Ok(RunStatus::Paused { cycle }) if cycle >= budget => Step::Failed(
            "budget_exhausted",
            format!("still running at cycle {cycle} with a budget of {budget}"),
        ),
        Ok(RunStatus::Paused { cycle }) => Step::Paused(Continuation {
            snapshot: Snapshot::capture(&sys).encode(),
            resume_at: cycle,
            workload,
            verify_json,
        }),
        Ok(RunStatus::Done(outcome)) => {
            let state_digest = Snapshot::capture(&sys).state_digest();
            let (correct, mismatches) = match &workload {
                None => (None, Vec::new()),
                Some((w, entry)) => {
                    let run = WorkloadRun {
                        cfg: system_config(spec),
                        shards: spec.shards,
                        ..WorkloadRun::default()
                    };
                    match run.evaluate(w, &sys, &entry.syms, outcome.clone()) {
                        Ok(bench) => (Some(bench.correct), bench.mismatches),
                        Err(e) => (Some(false), vec![e.to_string()]),
                    }
                }
            };
            Step::Done(JobResult { outcome, state_digest, correct, mismatches, verify_json })
        }
    };
    StepReport { step, cache_hit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Program;

    fn spec(program: Program) -> JobSpec {
        JobSpec {
            program,
            tenant: "t".into(),
            pes: 1,
            shards: 0,
            verify: VerifyLevel::Warn,
            backend: qm_sim::Backend::Interp,
            max_cycles: None,
            slice_cycles: None,
        }
    }

    fn drain_one(queue: &JobQueue, cache: &CompileCache, defaults: &ExecConfig) {
        let unit = queue.claim().expect("work available");
        let id = unit.id;
        let report = execute_slice(unit, cache, defaults);
        queue.complete(id, report);
    }

    #[test]
    fn capacity_bounds_are_enforced() {
        let q = JobQueue::new(2, 1);
        q.submit(spec(Program::Assembly("main: trap #3,#0".into()))).unwrap();
        // Tenant cap first: same tenant, queue not yet full.
        let err = q.submit(spec(Program::Assembly("x".into()))).unwrap_err();
        assert_eq!(err.code, "tenant_busy");
        // Queue cap: a second tenant fills the queue, a third bounces.
        let mut other = spec(Program::Assembly("y".into()));
        other.tenant = "u".into();
        q.submit(other).unwrap();
        let mut third = spec(Program::Assembly("z".into()));
        third.tenant = "v".into();
        assert_eq!(q.submit(third).unwrap_err().code, "queue_full");
    }

    #[test]
    fn assembly_job_runs_to_done() {
        let q = JobQueue::new(8, 8);
        let cache = CompileCache::new();
        let defaults = ExecConfig::default();
        let id =
            q.submit(spec(Program::Assembly("main: send+3 #0,#7\n trap #3,#0".into()))).unwrap();
        drain_one(&q, &cache, &defaults);
        q.with_job(id, |j| {
            assert_eq!(j.status, Status::Done);
            let r = j.result.as_ref().expect("result");
            assert_eq!(r.outcome.output, vec![7]);
            assert!(r.verify_json.is_some());
        })
        .unwrap();
        assert_eq!(q.stats().done, 1);
    }

    #[test]
    fn sliced_run_matches_unsliced_bit_for_bit() {
        let cache = CompileCache::new();
        let q = JobQueue::new(8, 8);
        let w = qm_workloads::matmul(4);
        let whole = spec(Program::Workload { name: "matmul".into(), param: 4 });
        let mut sliced = whole.clone();
        sliced.slice_cycles = Some(500);
        let id_whole = q.submit(whole).unwrap();
        let id_sliced = q.submit(sliced).unwrap();
        let defaults = ExecConfig::default();
        // Drain until both jobs settle (sliced one requeues itself).
        while q.stats().done + q.stats().failed < 2 {
            drain_one(&q, &cache, &defaults);
        }
        let (d1, c1) = q
            .with_job(id_whole, |j| {
                let r = j.result.as_ref().expect("whole result");
                assert_eq!(j.slices, 1);
                (r.state_digest, r.outcome.elapsed_cycles)
            })
            .unwrap();
        let (d2, c2, slices, correct) = q
            .with_job(id_sliced, |j| {
                let r = j.result.as_ref().expect("sliced result");
                (r.state_digest, r.outcome.elapsed_cycles, j.slices, r.correct)
            })
            .unwrap();
        assert!(slices > 1, "a 500-cycle slice must preempt matmul(4) at least once");
        assert_eq!((d1, c1), (d2, c2), "preemption must not change the result");
        assert_eq!(correct, Some(true));
        // And both match a direct WorkloadRun.
        let direct = WorkloadRun::new().run(&w).unwrap();
        assert_eq!(c1, direct.outcome.elapsed_cycles);
    }

    #[test]
    fn translated_job_matches_interp_bit_for_bit() {
        let cache = CompileCache::new();
        let q = JobQueue::new(8, 8);
        let interp = spec(Program::Workload { name: "matmul".into(), param: 4 });
        let mut translated = interp.clone();
        translated.verify = VerifyLevel::Strict;
        translated.backend = qm_sim::Backend::Translated;
        // Slice the translated job so the preempt → restore →
        // `set_backend` path runs, not just the fresh build.
        translated.slice_cycles = Some(500);
        let id_interp = q.submit(interp).unwrap();
        let id_translated = q.submit(translated).unwrap();
        let defaults = ExecConfig::default();
        while q.stats().done + q.stats().failed < 2 {
            drain_one(&q, &cache, &defaults);
        }
        let a = q
            .with_job(id_interp, |j| {
                let r = j.result.as_ref().expect("interp result");
                (r.state_digest, r.outcome.elapsed_cycles, r.correct)
            })
            .unwrap();
        let (slices, b) = q
            .with_job(id_translated, |j| {
                let r = j.result.as_ref().expect("translated result");
                (j.slices, (r.state_digest, r.outcome.elapsed_cycles, r.correct))
            })
            .unwrap();
        assert!(slices > 1, "the translated job must have been preempted at least once");
        assert_eq!(a, b, "the translated backend must be bit-identical to the interpreter");
        assert_eq!(b.2, Some(true));
        let stats = q.stats();
        assert_eq!((stats.done, stats.translated), (2, 1));
    }

    #[test]
    fn budget_exhaustion_fails_cleanly() {
        let q = JobQueue::new(8, 8);
        let cache = CompileCache::new();
        let mut s = spec(Program::Workload { name: "matmul".into(), param: 4 });
        s.max_cycles = Some(100);
        let id = q.submit(s).unwrap();
        drain_one(&q, &cache, &ExecConfig::default());
        q.with_job(id, |j| {
            assert_eq!(j.status, Status::Failed);
            assert_eq!(j.error.as_ref().unwrap().0, "budget_exhausted");
        })
        .unwrap();
    }

    #[test]
    fn strict_verification_rejects_bad_assembly() {
        let q = JobQueue::new(8, 8);
        let cache = CompileCache::new();
        // A program that underflows its queue: consumes with no producer.
        let mut s = spec(Program::Assembly("main: plus+2 #1,#2 :r0\n trap #2,#0".into()));
        s.verify = VerifyLevel::Strict;
        let id = q.submit(s).unwrap();
        drain_one(&q, &cache, &ExecConfig::default());
        q.with_job(id, |j| {
            assert_eq!(j.status, Status::Failed, "{:?}", j.error);
            assert_eq!(j.error.as_ref().unwrap().0, "verify_rejected");
        })
        .unwrap();
    }

    #[test]
    fn identical_resubmission_hits_the_cache() {
        let q = JobQueue::new(8, 8);
        let cache = CompileCache::new();
        let defaults = ExecConfig::default();
        let a = q.submit(spec(Program::Workload { name: "reduction".into(), param: 8 })).unwrap();
        drain_one(&q, &cache, &defaults);
        let b = q.submit(spec(Program::Workload { name: "reduction".into(), param: 8 })).unwrap();
        drain_one(&q, &cache, &defaults);
        assert_eq!(q.with_job(a, |j| j.cache_hit), Some(false));
        assert_eq!(q.with_job(b, |j| j.cache_hit), Some(true));
        assert_eq!(cache.stats().hits, 1);
        let (da, db) = (
            q.with_job(a, |j| j.result.as_ref().unwrap().state_digest).unwrap(),
            q.with_job(b, |j| j.result.as_ref().unwrap().state_digest).unwrap(),
        );
        assert_eq!(da, db, "a cache hit must not change results");
    }
}
