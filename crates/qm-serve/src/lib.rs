//! `qm-serve` — the queue-machine simulator as a multi-tenant service.
//!
//! One process serves simulation jobs over a tiny hand-rolled HTTP/1.1
//! surface (`std::net` only — this workspace takes no external
//! dependencies):
//!
//! - `POST /v1/jobs` — submit OCCAM source, raw assembly or a bundled
//!   workload, plus system knobs (`pes`, `shards`, `verify`,
//!   `max_cycles`, `slice_cycles`). Answers `202` with a `job` envelope.
//! - `GET /v1/jobs/:id` — poll a job; finished jobs carry the full
//!   `run_outcome` body, the architectural state digest and the verify
//!   report.
//! - `GET /v1/health` — queue and compile-cache counters.
//!
//! Every response is a `qm-api/v1` envelope (`docs/API.md`).
//!
//! Three mechanisms make the service multi-tenant rather than a REPL:
//!
//! - a **content-hashed compile cache** ([`cache`]): identical programs
//!   compile and verify once; later submissions skip straight to
//!   execution (determinism makes the cached artifacts exact);
//! - a **bounded FIFO queue with per-tenant in-flight caps** ([`jobs`]):
//!   admission control at submit time, fair drain order after;
//! - **snapshot-based preemption** ([`jobs`]): long jobs run in cycle
//!   slices, captured and requeued between slices, so short jobs are
//!   never starved — and by the determinism contract
//!   (`docs/DETERMINISM.md`) slicing provably cannot change results.

pub mod api;
pub mod cache;
pub mod http;
pub mod jobs;
pub mod server;

pub use api::{ApiError, JobSpec, Program};
pub use cache::CompileCache;
pub use jobs::{ExecConfig, JobQueue};
pub use server::{ServeConfig, Server};
