//! Serve queue-machine simulations over HTTP.
//!
//! ```text
//! qm-serve [--addr HOST:PORT] [--workers N] [--http-workers N]
//!          [--slice-cycles N] [--max-cycles N]
//!          [--queue-cap N] [--tenant-cap N]
//! ```
//!
//! Binds (default `127.0.0.1:8713`), prints the bound address, then
//! serves until killed. `docs/API.md` documents the surface; the README
//! has a curl walkthrough.

use qm_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: qm-serve [--addr HOST:PORT] [--workers N] [--http-workers N]\n\
         \x20               [--slice-cycles N] [--max-cycles N] [--queue-cap N] [--tenant-cap N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServeConfig { addr: "127.0.0.1:8713".to_string(), ..ServeConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        let parse = |v: &str| v.parse::<u64>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = value,
            "--workers" => cfg.workers = parse(&value).max(1) as usize,
            "--http-workers" => cfg.http_workers = parse(&value).max(1) as usize,
            "--slice-cycles" => cfg.slice_cycles = parse(&value),
            "--max-cycles" => cfg.max_cycles = parse(&value).max(1),
            "--queue-cap" => cfg.queue_cap = parse(&value).max(1) as usize,
            "--tenant-cap" => cfg.tenant_cap = parse(&value).max(1) as usize,
            _ => usage(),
        }
    }

    let server = Server::start(&cfg).unwrap_or_else(|e| {
        eprintln!("qm-serve: cannot bind {}: {e}", cfg.addr);
        std::process::exit(1);
    });
    println!("qm-serve listening on http://{}", server.addr());
    println!(
        "  {} job worker(s), slice {} cycles, budget {} cycles, queue cap {}, tenant cap {}",
        cfg.workers, cfg.slice_cycles, cfg.max_cycles, cfg.queue_cap, cfg.tenant_cap
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
