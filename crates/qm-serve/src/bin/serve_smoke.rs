//! End-to-end service check for CI (`serve-smoke` job) and
//! `scripts/offline-build.sh --serve`.
//!
//! Proves the three properties the service is sold on, against a real
//! listening socket:
//!
//! 1. **Fidelity** — a job submitted over HTTP reports exactly the cycle
//!    count and architectural state digest of a direct
//!    [`WorkloadRun`] of the same workload in-process.
//! 2. **Compile cache** — resubmitting the identical program is answered
//!    from the cache (`cache_hit` on the job, hit counter via
//!    `GET /v1/health`) and produces identical results.
//! 3. **Preemption** — the same job on a server with a small time slice
//!    is preempted and resumed across workers, and still produces the
//!    identical cycle count and digest (the determinism contract, over
//!    the wire).
//!
//! Exits non-zero with a message on the first violated property.

use qm_core::json::{parse, JsonValue};
use qm_serve::http::request;
use qm_serve::{ServeConfig, Server};
use qm_sim::report::digest_hex;
use qm_sim::snapshot::Snapshot;
use qm_workloads::WorkloadRun;

const JOB: &str = r#"{"workload":"matmul","param":4,"pes":2,"tenant":"smoke"}"#;
const JOB_TRANSLATED: &str =
    r#"{"workload":"matmul","param":4,"pes":2,"tenant":"smoke","backend":"translated"}"#;

fn fail(msg: &str) -> ! {
    eprintln!("serve smoke FAILED: {msg}");
    std::process::exit(1);
}

fn get(addr: &str, path: &str) -> JsonValue {
    let (status, body) =
        request(addr, "GET", path, "").unwrap_or_else(|e| fail(&format!("GET {path}: {e}")));
    if status != 200 {
        fail(&format!("GET {path}: status {status}: {body}"));
    }
    parse(&body).unwrap_or_else(|e| fail(&format!("GET {path}: bad JSON: {e}")))
}

/// Submit `job` and poll until it settles; returns the final `data`
/// object.
fn run_job(addr: &str, job: &str) -> JsonValue {
    let (status, body) = request(addr, "POST", "/v1/jobs", job)
        .unwrap_or_else(|e| fail(&format!("POST /v1/jobs: {e}")));
    if status != 202 {
        fail(&format!("POST /v1/jobs: status {status}: {body}"));
    }
    let v = parse(&body).unwrap_or_else(|e| fail(&format!("POST response: bad JSON: {e}")));
    let id = v
        .get("data")
        .and_then(|d| d.get("id"))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| fail("POST response has no data.id"));
    for _ in 0..6000 {
        let v = get(addr, &format!("/v1/jobs/{id}"));
        let data = v.get("data").cloned().unwrap_or_else(|| fail("job reply has no data"));
        match data.get("status").and_then(JsonValue::as_str) {
            Some("done") => return data,
            Some("failed") => fail(&format!("job {id} failed: {data:?}")),
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    fail("job did not settle within 60s");
}

fn cycles_and_digest(data: &JsonValue) -> (u64, String) {
    let result = data.get("result").unwrap_or_else(|| fail("done job has no result"));
    let cycles = result
        .get("cycles")
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| fail("result has no cycles"));
    let digest = result
        .get("state_digest")
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| fail("result has no state_digest"));
    if data.get("result").and_then(|r| r.get("correct")).and_then(JsonValue::as_bool) != Some(true)
    {
        fail("workload job did not verify as correct");
    }
    (cycles, digest.to_string())
}

fn main() {
    // Direct, in-process reference run.
    let w = qm_workloads::matmul(4);
    let run = WorkloadRun::with_pes(2);
    let (mut sys, compiled) = run.prepare(&w).unwrap_or_else(|e| fail(&e.to_string()));
    let outcome = sys.run().unwrap_or_else(|e| fail(&e.to_string()));
    let bench =
        run.evaluate(&w, &sys, &compiled.syms, outcome).unwrap_or_else(|e| fail(&e.to_string()));
    assert!(bench.correct, "reference run incorrect: {:?}", bench.mismatches);
    let want_cycles = bench.outcome.elapsed_cycles;
    let want_digest = digest_hex(Snapshot::capture(&sys).state_digest());

    // 1. Fidelity over HTTP (no slicing).
    let server = Server::start(&ServeConfig::default()).unwrap_or_else(|e| fail(&e.to_string()));
    let addr = server.addr().to_string();
    let first = run_job(&addr, JOB);
    let (cycles, digest) = cycles_and_digest(&first);
    if (cycles, digest.as_str()) != (want_cycles, want_digest.as_str()) {
        fail(&format!(
            "HTTP job diverged from direct run: got {cycles}/{digest}, want {want_cycles}/{want_digest}"
        ));
    }
    if first.get("cache_hit") != Some(&JsonValue::Bool(false)) {
        fail("first submission must be a cache miss");
    }

    // 2. Identical resubmission is served from the compile cache.
    let second = run_job(&addr, JOB);
    if second.get("cache_hit") != Some(&JsonValue::Bool(true)) {
        fail("identical resubmission must hit the compile cache");
    }
    if cycles_and_digest(&second) != (want_cycles, want_digest.clone()) {
        fail("cache hit changed the result");
    }
    let health = get(&addr, "/v1/health");
    let hits = health
        .get("data")
        .and_then(|d| d.get("cache"))
        .and_then(|c| c.get("hits"))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| fail("health has no data.cache.hits"));
    if hits < 1 {
        fail("health must report at least one cache hit");
    }

    // 2b. The translated backend over the wire: echoed in the envelope,
    // counted in health, and bit-identical to the interpreted runs.
    let fast = run_job(&addr, JOB_TRANSLATED);
    if fast.get("backend").and_then(JsonValue::as_str) != Some("translated") {
        fail("job envelope must echo the translated backend");
    }
    if cycles_and_digest(&fast) != (want_cycles, want_digest.clone()) {
        fail("translated job diverged from the interpreted run");
    }
    let health = get(&addr, "/v1/health");
    let translated = health
        .get("data")
        .and_then(|d| d.get("jobs"))
        .and_then(|jobs| jobs.get("translated"))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| fail("health has no data.jobs.translated"));
    if translated != 1 {
        fail(&format!("health must count exactly one translated run, got {translated}"));
    }
    server.shutdown();

    // 3. Preemption: small slice, several workers; result is bit-identical.
    let sliced_cfg = ServeConfig { slice_cycles: 500, workers: 3, ..ServeConfig::default() };
    let sliced_server = Server::start(&sliced_cfg).unwrap_or_else(|e| fail(&e.to_string()));
    let sliced = run_job(&sliced_server.addr().to_string(), JOB);
    let slices = sliced
        .get("slices")
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| fail("job reply has no slices"));
    if slices < 2 {
        fail(&format!("a 500-cycle slice must preempt matmul(4); ran in {slices} slice(s)"));
    }
    if cycles_and_digest(&sliced) != (want_cycles, want_digest.clone()) {
        fail("preempted-and-resumed job diverged from the unsliced run");
    }
    sliced_server.shutdown();

    println!(
        "serve smoke OK: {want_cycles} cycles, digest {want_digest}, cache hit verified, \
         translated backend bit-identical, {slices} preemption slices bit-identical"
    );
}
