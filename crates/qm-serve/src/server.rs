//! The serving loop: a listener thread, a small connection-handler pool
//! and a fixed pool of job workers, all over `std` primitives.
//!
//! Connections and jobs are deliberately decoupled: a `POST /v1/jobs`
//! only parses, admits and enqueues (microseconds), so the HTTP pool
//! stays responsive no matter how long simulations run. Workers drain
//! the job queue one preemption slice at a time, so a long job cannot
//! starve the short ones queued behind it.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use qm_core::json::Envelope;
use qm_sim::report::digest_hex;

use crate::api::{parse_job, ApiError};
use crate::cache::CompileCache;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::jobs::{execute_slice, ExecConfig, Job, JobQueue};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address
    /// is reported by [`Server::addr`]).
    pub addr: String,
    /// Job-worker threads (simulation parallelism).
    pub workers: usize,
    /// Connection-handler threads.
    pub http_workers: usize,
    /// Default preemption slice in cycles (`0` = no slicing); jobs can
    /// override per-submission.
    pub slice_cycles: u64,
    /// Default watchdog cycle budget; jobs can override downward or up.
    pub max_cycles: u64,
    /// Maximum queued jobs.
    pub queue_cap: usize,
    /// Maximum in-flight jobs per tenant.
    pub tenant_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            http_workers: 2,
            slice_cycles: 0,
            max_cycles: ExecConfig::default().max_cycles,
            queue_cap: 256,
            tenant_cap: 8,
        }
    }
}

struct Shared {
    queue: JobQueue,
    cache: CompileCache,
    defaults: ExecConfig,
    workers: usize,
    conns: Mutex<Vec<TcpStream>>,
    conns_cv: Condvar,
    stopping: AtomicBool,
}

/// A running server; dropping it *without* calling
/// [`shutdown`](Self::shutdown) leaves the threads running detached.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. Returns once the listener is accepting.
    ///
    /// # Errors
    ///
    /// `io::Error` if the address cannot be bound.
    pub fn start(cfg: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_cap, cfg.tenant_cap),
            cache: CompileCache::new(),
            defaults: ExecConfig { slice_cycles: cfg.slice_cycles, max_cycles: cfg.max_cycles },
            workers: cfg.workers,
            conns: Mutex::new(Vec::new()),
            conns_cv: Condvar::new(),
            stopping: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        for i in 0..cfg.workers.max(1) {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("qm-serve-job-{i}"))
                    .spawn(move || job_worker(&s))?,
            );
        }
        for i in 0..cfg.http_workers.max(1) {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("qm-serve-http-{i}"))
                    .spawn(move || http_worker(&s))?,
            );
        }
        {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("qm-serve-accept".to_string())
                    .spawn(move || accept_loop(&listener, &s))?,
            );
        }
        Ok(Server { shared, addr, threads })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake every pool thread and join them. In-flight
    /// slices finish; queued jobs are dropped with the queue.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.queue.shutdown();
        self.shared.conns_cv.notify_all();
        // The accept loop is blocked in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                shared.conns.lock().expect("conn lock").push(stream);
                shared.conns_cv.notify_one();
            }
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn http_worker(shared: &Shared) {
    loop {
        let stream = {
            let mut conns = shared.conns.lock().expect("conn lock");
            loop {
                if let Some(stream) = conns.pop() {
                    break stream;
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                conns = shared.conns_cv.wait(conns).expect("conn lock");
            }
        };
        serve_connection(shared, stream);
    }
}

fn job_worker(shared: &Shared) {
    while let Some(unit) = shared.queue.claim() {
        let id = unit.id;
        let report = execute_slice(unit, &shared.cache, &shared.defaults);
        shared.queue.complete(id, report);
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let (status, body) = match read_request(&mut reader) {
        Ok(req) => route(shared, &req),
        Err(HttpError::TooLarge(what)) => {
            let e = ApiError::new(413, "payload_too_large", format!("{what} exceeds the cap"));
            (e.status, e.to_json())
        }
        Err(e) => {
            let e = ApiError::new(400, "bad_request", e.to_string());
            (e.status, e.to_json())
        }
    };
    let _ = write_response(&mut writer, status, &body);
}

fn route(shared: &Shared, req: &Request) -> (u16, String) {
    let result = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => post_job(shared, &req.body),
        ("GET", "/v1/health") => Ok((200, health_json(shared))),
        ("GET", path) if path.starts_with("/v1/jobs/") => get_job(shared, path),
        ("GET", "/v1/jobs") | ("POST", "/v1/health") => {
            Err(ApiError::new(405, "method_not_allowed", "see docs/API.md for the v1 surface"))
        }
        _ => Err(ApiError::new(404, "not_found", "unknown route (the API is rooted at /v1)")),
    };
    result.unwrap_or_else(|e| (e.status, e.to_json()))
}

fn post_job(shared: &Shared, body: &[u8]) -> Result<(u16, String), ApiError> {
    let spec = parse_job(body)?;
    let id = shared.queue.submit(spec)?;
    let json = shared
        .queue
        .with_job(id, job_json)
        .ok_or_else(|| ApiError::new(500, "internal", "job vanished between submit and render"))?;
    Ok((202, json))
}

fn get_job(shared: &Shared, path: &str) -> Result<(u16, String), ApiError> {
    let id: u64 = path["/v1/jobs/".len()..]
        .parse()
        .map_err(|_| ApiError::new(400, "bad_request", "job ids are integers"))?;
    let json = shared.queue.with_job(id, job_json).ok_or_else(|| {
        ApiError::new(404, "not_found", format!("no job {id} (evicted or never submitted)"))
    })?;
    Ok((200, json))
}

/// Render a job as the `qm-api/v1` `job` envelope.
fn job_json(job: &Job) -> String {
    Envelope::render("job", |j| {
        j.u64_field("id", job.id);
        j.str_field("tenant", &job.spec.tenant);
        j.str_field("status", job.status.as_str());
        j.str_field("backend", job.spec.backend.as_str());
        j.u64_field("slices", job.slices);
        j.bool_field("cache_hit", job.cache_hit);
        if let Some(r) = &job.result {
            j.key("result");
            j.begin_obj();
            j.u64_field("cycles", r.outcome.elapsed_cycles);
            j.str_field("state_digest", &digest_hex(r.state_digest));
            match r.correct {
                Some(c) => j.bool_field("correct", c),
                None => {
                    j.key("correct");
                    j.null_val();
                }
            }
            if !r.mismatches.is_empty() {
                j.key("mismatches");
                j.begin_arr();
                for m in &r.mismatches {
                    j.str_val(m);
                }
                j.end_arr();
            }
            j.key("outcome");
            j.begin_obj();
            qm_sim::report::write_run_outcome(j, &r.outcome);
            j.end_obj();
            if let Some(v) = &r.verify_json {
                j.key("verify");
                j.raw(v);
            }
            j.end_obj();
        }
        if let Some((code, message)) = &job.error {
            j.key("error");
            j.begin_obj();
            j.str_field("code", code);
            j.str_field("message", message);
            j.end_obj();
        }
    })
}

fn health_json(shared: &Shared) -> String {
    let q = shared.queue.stats();
    let c = shared.cache.stats();
    Envelope::render("health", |j| {
        j.str_field("status", "ok");
        j.u64_field("workers", shared.workers as u64);
        j.key("jobs");
        j.begin_obj();
        j.u64_field("accepted", q.accepted);
        j.u64_field("queued", q.queued);
        j.u64_field("running", q.running);
        j.u64_field("done", q.done);
        j.u64_field("failed", q.failed);
        j.u64_field("translated", q.translated);
        j.end_obj();
        j.key("cache");
        j.begin_obj();
        j.u64_field("hits", c.hits);
        j.u64_field("misses", c.misses);
        j.u64_field("entries", c.entries);
        j.end_obj();
    })
}
