//! Content-hashed compile cache.
//!
//! Jobs are keyed by a checksum of their program text (plus a kind tag
//! and the compiler-option bits, so an OCCAM source and an identical
//! assembly listing can never collide). A hit returns the assembled
//! [`Object`], resolved symbols and the *verification report captured at
//! fill time* — resubmitting an identical program skips both the
//! compiler and the verifier, which is the whole point: verification is
//! a pure function of the object code, so the cached report is exactly
//! what a fresh run would produce.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qm_isa::asm::Object;
use qm_occam::sema::SymKind;
use qm_occam::Options;
use qm_sim::rng::checksum;
use qm_verify::VerifyOptions;

use crate::api::Program;

/// A cached compilation: everything a job needs downstream of the
/// compiler.
#[derive(Debug)]
pub struct Entry {
    /// Assembled object code.
    pub object: Object,
    /// Resolved symbol table (empty for raw assembly programs).
    pub syms: HashMap<String, SymKind>,
    /// The `verify_report` envelope captured when the entry was filled.
    pub verify_json: String,
    /// Whether that report contained error-severity findings (drives
    /// strict-mode rejection without re-running the verifier).
    pub verify_errors: bool,
}

/// Thread-safe compile cache with hit/miss counters (`GET /v1/health`
/// reports them, and the smoke test asserts on them).
#[derive(Debug, Default)]
pub struct CompileCache {
    entries: Mutex<HashMap<u64, Arc<Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Counter snapshot for health reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Distinct programs currently cached.
    pub entries: u64,
}

/// The cache key: a checksum over the program kind, its text, the
/// compiler options that shaped code generation and the verifier
/// options that shaped the cached report. The verifier bits matter
/// beyond cosmetics: the cached report's fast-path certificate is what
/// admits a job to the translated backend, so two page geometries must
/// never share an entry.
#[must_use]
pub fn key(program: &Program, opts: &Options, verify: &VerifyOptions) -> u64 {
    let (tag, text): (&[u8], &str) = match program {
        Program::Occam(src) => (b"occam\0", src),
        Program::Assembly(src) => (b"asm\0", src),
        // Workload programs hash their generated OCCAM source, so two
        // submissions of `matmul(4)` share an entry with a raw
        // submission of the same source.
        Program::Workload { .. } => unreachable!("workloads hash their source; see lookup sites"),
    };
    let mut bytes = Vec::with_capacity(tag.len() + text.len() + 12);
    bytes.extend_from_slice(tag);
    bytes.push(u8::from(opts.live_value_analysis));
    bytes.push(u8::from(opts.input_sequencing));
    bytes.push(u8::from(opts.priority_scheduling));
    bytes.push(u8::from(opts.loop_unrolling));
    bytes.extend_from_slice(&u64::from(verify.page_words).to_le_bytes());
    bytes.extend_from_slice(text.as_bytes());
    checksum(&bytes)
}

/// As [`key`], for a workload program's generated source.
#[must_use]
pub fn source_key(source: &str, opts: &Options, verify: &VerifyOptions) -> u64 {
    key(&Program::Occam(source.to_string()), opts, verify)
}

impl CompileCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Look `k` up; on a miss, run `fill` and cache its result. Compile
    /// failures are *not* cached — a transient submission error should
    /// not poison the key. `fill` runs outside the map lock, so two
    /// concurrent misses on the same key may both compile; the second
    /// insert wins and the duplicates are identical by determinism.
    ///
    /// Returns the entry and whether it was a hit.
    ///
    /// # Errors
    ///
    /// Whatever `fill` reports (a compile/assemble error message).
    pub fn lookup_or_fill(
        &self,
        k: u64,
        fill: impl FnOnce() -> Result<Entry, String>,
    ) -> Result<(Arc<Entry>, bool), String> {
        if let Some(hit) = self.entries.lock().expect("cache lock").get(&k) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        let entry = Arc::new(fill()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().expect("cache lock").insert(k, Arc::clone(&entry));
        Ok((entry, false))
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache lock").len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Entry {
        Entry {
            object: qm_isa::asm::assemble("main: trap #3,#0").expect("assembles"),
            syms: HashMap::new(),
            verify_json: String::new(),
            verify_errors: false,
        }
    }

    #[test]
    fn keys_separate_kinds_and_options() {
        let opts = Options::default();
        let verify = VerifyOptions::default();
        let occam = key(&Program::Occam("x := 1".into()), &opts, &verify);
        let asm = key(&Program::Assembly("x := 1".into()), &opts, &verify);
        assert_ne!(occam, asm, "same text, different kind");
        let other = Options { loop_unrolling: !opts.loop_unrolling, ..opts };
        assert_ne!(
            key(&Program::Occam("x := 1".into()), &opts, &verify),
            key(&Program::Occam("x := 1".into()), &other, &verify),
            "options shape codegen, so they shape the key"
        );
        let other_pages = VerifyOptions { page_words: verify.page_words * 2 };
        assert_ne!(
            key(&Program::Occam("x := 1".into()), &opts, &verify),
            key(&Program::Occam("x := 1".into()), &opts, &other_pages),
            "verifier geometry shapes the cached report, so it shapes the key"
        );
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = CompileCache::new();
        let (_, hit) = cache.lookup_or_fill(7, || Ok(entry())).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup_or_fill(7, || panic!("must not recompile")).unwrap();
        assert!(hit);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, entries: 1 });
    }

    #[test]
    fn failures_are_not_cached() {
        let cache = CompileCache::new();
        assert!(cache.lookup_or_fill(9, || Err("syntax".into())).is_err());
        assert_eq!(cache.stats().entries, 0);
        let (_, hit) = cache.lookup_or_fill(9, || Ok(entry())).unwrap();
        assert!(!hit, "the earlier failure must not satisfy the lookup");
    }
}
