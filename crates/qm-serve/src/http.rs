//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for
//! the `qm-api/v1` surface (`POST`/`GET`, JSON bodies, close-delimited
//! responses), with hard caps on header and body size so a misbehaving
//! client cannot balloon server memory.
//!
//! This is deliberately not a general HTTP implementation: no keep-alive,
//! no chunked transfer, no multipart. Every connection carries exactly
//! one request and one `Connection: close` response, which keeps the
//! handler pool trivially fair and the framing code small enough to
//! audit.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus all header lines, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body, in bytes (OCCAM sources are small).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request: method, path and raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Framing-level failure while reading a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or header.
    Malformed(&'static str),
    /// Head or body exceeded its size cap.
    TooLarge(&'static str),
    /// The socket failed mid-read.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e.to_string())
    }
}

fn read_line_capped(r: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => return Err(HttpError::Malformed("connection closed mid-line")),
            _ => {
                if *budget == 0 {
                    return Err(HttpError::TooLarge("head"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 header"))
}

/// Read one request from `r`. Only `Content-Length` bodies are
/// understood; every other header is ignored.
///
/// # Errors
///
/// [`HttpError`] on malformed framing, size-cap violations or socket
/// failures.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line_capped(r, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?.to_string();
    let target = parts.next().ok_or(HttpError::Malformed("no request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    if parts.next().is_none() {
        return Err(HttpError::Malformed("no HTTP version"));
    }

    let mut content_length: usize = 0;
    loop {
        let line = read_line_capped(r, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable content-length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(|_| HttpError::Malformed("body shorter than declared"))?;
    Ok(Request { method, path, body })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write a one-shot JSON response and flush. The connection is meant to
/// be dropped afterwards (`Connection: close`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(w: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_text(status),
        body.len(),
    )?;
    w.flush()
}

/// Blocking single-request client: send `method path` with `body` to
/// `addr`, return `(status, body)`. Shared by the smoke binary, the
/// integration tests and anyone scripting against a local server
/// without curl.
///
/// # Errors
///
/// [`HttpError`] on connect/framing failures or a malformed response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), HttpError> {
    let stream = TcpStream::connect(addr)?;
    let mut out = io::BufWriter::new(stream.try_clone()?);
    write!(
        out,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    out.flush()?;

    let mut r = BufReader::new(stream);
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_line_capped(&mut r, &mut budget)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::Malformed("bad status line"))?;
    loop {
        if read_line_capped(&mut r, &mut budget)?.is_empty() {
            break;
        }
    }
    let mut body = String::new();
    r.read_to_string(&mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn strips_query_string_and_tolerates_missing_body() {
        let raw = b"GET /v1/health?verbose=1 HTTP/1.1\r\n\r\n";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.path, "/v1/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw =
            format!("POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = read_request(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert_eq!(err, HttpError::TooLarge("body"));
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut Cursor::new(&raw[..])).is_err());
    }

    #[test]
    fn response_framing_is_parseable() {
        let mut buf = Vec::new();
        write_response(&mut buf, 202, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        assert!(text.contains("Content-Length: 11\r\n"));
    }
}
