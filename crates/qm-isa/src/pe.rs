//! The processing element emulator (thesis §5.3–5.4).
//!
//! [`Pe`] executes one instruction per [`Pe::step`], accumulating a cycle
//! count from a configurable [`CycleModel`] (the thesis's 3-stage pipeline
//! sustains one simple instruction per cycle; memory traffic, immediate
//! words, taken branches and traps cost extra). Channel operations are
//! delegated to a [`Services`] implementation — the message processor in
//! `qm-sim` — and may *block*, in which case the instruction is left
//! un-executed for the kernel to retry after a context switch.

use crate::decoded::DecodedInstr;
use crate::isa::REG_DUMMY;
use crate::mem::DataPort;
use crate::regs::{RegisterFile, SavedRegisters};
use crate::{UWord, Word};

/// Per-instruction-class cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleModel {
    /// Base cost of every instruction (pipeline issue slot).
    pub base: u64,
    /// Extra cost per immediate word operand (extra instruction fetch).
    pub imm_word: u64,
    /// Extra cost of a data-memory access (on top of [`DataPort`] cycles).
    pub mem_extra: u64,
    /// Extra cost of filling a window register from memory on a miss.
    pub window_miss: u64,
    /// Extra cost of a taken branch (pipeline refill).
    pub branch_taken: u64,
    /// Extra cost of a trap (kernel entry).
    pub trap: u64,
    /// Extra cost of a channel operation handled by the message processor.
    pub channel: u64,
    /// Base cost of a context switch (kernel scheduling work).
    pub context_switch: u64,
    /// Cost per window register rolled out on a context switch.
    pub rollout_per_reg: u64,
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel {
            base: 1,
            imm_word: 1,
            mem_extra: 1,
            window_miss: 1,
            branch_taken: 1,
            trap: 4,
            channel: 2,
            context_switch: 8,
            rollout_per_reg: 1,
        }
    }
}

/// Why a step could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// `send` on a channel with no matching receiver yet.
    SendOn(Word),
    /// `recv` on a channel with no matching sender yet.
    RecvOn(Word),
}

/// Outcome of one [`Pe::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// Instruction completed; PC advanced.
    Continue,
    /// A channel operation would block. The PC was *not* advanced: the
    /// instruction re-executes when the context resumes.
    Blocked(BlockReason),
    /// A `trap`/`ftrap` executed. The PC has advanced past the trap; the
    /// kernel services `entry` with `arg` and may deposit results via
    /// [`Pe::write_dst`] into `dst1`/`dst2`.
    Trap {
        /// Kernel entry point number (from `src1`).
        entry: Word,
        /// Argument (from `src2`).
        arg: Word,
        /// First result destination register.
        dst1: u8,
        /// Second result destination register.
        dst2: u8,
        /// True for `ftrap`.
        fast: bool,
    },
    /// `rett`/`fret` executed (kernel-mode return; the host kernel
    /// interprets it).
    Return {
        /// True for `fret`.
        fast: bool,
    },
    /// The instruction stream was undecodable.
    Error(String),
}

/// Outcome of a channel `send` as seen by the PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The transfer completed (or was accepted by the message processor).
    Done {
        /// Extra cycles charged by the message processor / bus.
        cycles: u64,
    },
    /// No receiver is waiting — rendezvous semantics require blocking.
    Block,
}

/// Outcome of a channel `recv` as seen by the PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A value arrived.
    Done {
        /// The received word.
        value: Word,
        /// Extra cycles charged by the message processor / bus.
        cycles: u64,
    },
    /// No sender is waiting.
    Block,
}

/// Channel services provided to the PE (implemented by the message
/// processor in `qm-sim`).
pub trait Services {
    /// Attempt to send `value` on `chan`.
    fn send(&mut self, pe: usize, chan: Word, value: Word) -> SendOutcome;
    /// Attempt to receive from `chan`.
    fn recv(&mut self, pe: usize, chan: Word) -> RecvOutcome;
}

/// Trivial services: sends are dropped, receives return zero. Useful for
/// testing channel-free code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullServices;

impl Services for NullServices {
    fn send(&mut self, _pe: usize, _chan: Word, _value: Word) -> SendOutcome {
        SendOutcome::Done { cycles: 0 }
    }
    fn recv(&mut self, _pe: usize, _chan: Word) -> RecvOutcome {
        RecvOutcome::Done { value: 0, cycles: 0 }
    }
}

/// Buffered loop-back channels for unit tests: `send` enqueues, `recv`
/// dequeues or blocks on empty.
#[derive(Debug, Clone, Default)]
pub struct BufferedChannels {
    queues: std::collections::HashMap<Word, std::collections::VecDeque<Word>>,
}

impl BufferedChannels {
    /// New empty channel set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-load a value into a channel.
    pub fn push(&mut self, chan: Word, value: Word) {
        self.queues.entry(chan).or_default().push_back(value);
    }
}

impl Services for BufferedChannels {
    fn send(&mut self, _pe: usize, chan: Word, value: Word) -> SendOutcome {
        self.queues.entry(chan).or_default().push_back(value);
        SendOutcome::Done { cycles: 0 }
    }
    fn recv(&mut self, _pe: usize, chan: Word) -> RecvOutcome {
        match self.queues.get_mut(&chan).and_then(std::collections::VecDeque::pop_front) {
            Some(value) => RecvOutcome::Done { value, cycles: 0 },
            None => RecvOutcome::Block,
        }
    }
}

/// Execution statistics kept by a PE.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Window register reads satisfied by a physical register.
    pub window_hits: u64,
    /// Window register reads that had to touch memory.
    pub window_misses: u64,
    /// Data words read.
    pub mem_reads: u64,
    /// Data words written.
    pub mem_writes: u64,
    /// Channel sends completed.
    pub sends: u64,
    /// Channel receives completed.
    pub recvs: u64,
    /// Traps taken.
    pub traps: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Window registers rolled out across all context switches.
    pub rollouts: u64,
}

impl PeStats {
    /// Field-wise difference `self - earlier`: the activity between two
    /// snapshots of the same PE's counters (e.g. one context residency
    /// slice). Saturates rather than wrapping if the snapshots are
    /// swapped.
    #[must_use]
    pub fn delta(&self, earlier: &PeStats) -> PeStats {
        PeStats {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            window_hits: self.window_hits.saturating_sub(earlier.window_hits),
            window_misses: self.window_misses.saturating_sub(earlier.window_misses),
            mem_reads: self.mem_reads.saturating_sub(earlier.mem_reads),
            mem_writes: self.mem_writes.saturating_sub(earlier.mem_writes),
            sends: self.sends.saturating_sub(earlier.sends),
            recvs: self.recvs.saturating_sub(earlier.recvs),
            traps: self.traps.saturating_sub(earlier.traps),
            context_switches: self.context_switches.saturating_sub(earlier.context_switches),
            rollouts: self.rollouts.saturating_sub(earlier.rollouts),
        }
    }
}

/// A queue machine processing element.
#[derive(Debug, Clone)]
pub struct Pe {
    /// This PE's index in the multiprocessor.
    pub id: usize,
    /// Architectural registers.
    pub regs: RegisterFile,
    /// Cycle counter.
    pub cycles: u64,
    /// Cycle cost model.
    pub model: CycleModel,
    /// Statistics.
    pub stats: PeStats,
    last_result: Word,
}

impl Pe {
    /// Create a PE with the default cycle model.
    #[must_use]
    pub fn new(id: usize) -> Self {
        Pe {
            id,
            regs: RegisterFile::new(),
            cycles: 0,
            model: CycleModel::default(),
            stats: PeStats::default(),
            last_result: 0,
        }
    }

    /// Reset to start executing at `pc` with an operand queue page at `qp`
    /// (POM 0 = 256-word pages).
    pub fn reset(&mut self, pc: UWord, qp: UWord) {
        self.regs = RegisterFile::new();
        self.regs.set_pc(pc);
        self.regs.set_qp(qp);
        self.regs.set_pom(0);
        self.last_result = 0;
    }

    /// The result of the most recently completed value-producing
    /// instruction (consumed by `dup`).
    #[must_use]
    pub fn last_result(&self) -> Word {
        self.last_result
    }

    /// Reinstate a `last_result` captured by [`Pe::last_result`] — used by
    /// external serializers restoring a mid-run PE, so a `dup` issued
    /// right after restore sees the same value it would have uninterrupted.
    pub fn set_last_result(&mut self, value: Word) {
        self.last_result = value;
    }

    /// Write a result to a destination register with full window
    /// semantics (DUMMY discards; used by the kernel to deliver trap
    /// results).
    #[inline]
    pub fn write_dst(&mut self, dst: u8, value: Word) {
        if dst == REG_DUMMY {
            return;
        }
        if dst < 16 {
            self.regs.write_window(dst, value);
        } else {
            self.regs.write_global(dst, value);
        }
        self.last_result = value;
    }

    /// Execute one instruction: fetch, translate to the shared decoded
    /// form and run it. The translated backend in `qm-sim` caches the
    /// [`DecodedInstr`] and calls [`Pe::step_decoded`] directly; both
    /// paths execute the same code, so they cannot disagree.
    pub fn step(&mut self, port: &mut dyn DataPort, svc: &mut dyn Services) -> StepResult {
        let pc0 = self.regs.pc();
        let words = [
            port.fetch_code(self.id, pc0),
            port.fetch_code(self.id, pc0.wrapping_add(4)),
            port.fetch_code(self.id, pc0.wrapping_add(8)),
        ];
        let d = match DecodedInstr::translate(&words) {
            Ok(d) => d,
            Err(e) => return StepResult::Error(e.to_string()),
        };
        self.step_decoded(&d, port, svc)
    }

    /// Execute one pre-decoded instruction. `d` must be the translation
    /// of the code at the current PC; charging, statistics and blocking
    /// behaviour are identical to [`Pe::step`] on the same words.
    #[inline]
    pub fn step_decoded(
        &mut self,
        d: &DecodedInstr,
        port: &mut dyn DataPort,
        svc: &mut dyn Services,
    ) -> StepResult {
        self.cycles += self.model.base + (u64::from(d.size_words()) - 1) * self.model.imm_word;
        d.exec(self, port, svc)
    }

    /// Roll out the window registers and save the context's register
    /// state; charges context-switch cycles (§5.2 — this is the cost the
    /// thesis credits for the multiprocessor's better-than-linear
    /// speed-up: fewer resident contexts per PE means fewer roll-outs).
    pub fn switch_out(&mut self, port: &mut dyn DataPort) -> SavedRegisters {
        let rolls = self.regs.rollout();
        for &(addr, v) in &rolls {
            let extra = port.write_word(self.id, addr, v);
            self.cycles += self.model.rollout_per_reg + extra;
            self.stats.rollouts += 1;
        }
        self.cycles += self.model.context_switch;
        self.stats.context_switches += 1;
        self.regs.save()
    }

    /// Restore a previously saved context; presence bits start clear and
    /// operands refill lazily from the queue page.
    pub fn switch_in(&mut self, saved: &SavedRegisters) {
        self.regs.restore(saved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, Opcode, SrcMode, REG_PC};
    use crate::mem::FlatMemory;

    #[test]
    fn pe_stats_delta_is_field_wise_and_saturating() {
        let earlier = PeStats { instructions: 10, sends: 2, ..PeStats::default() };
        let later = PeStats { instructions: 25, sends: 2, traps: 3, ..PeStats::default() };
        let d = later.delta(&earlier);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.sends, 0);
        assert_eq!(d.traps, 3);
        assert_eq!(earlier.delta(&later).instructions, 0, "swapped snapshots saturate");
    }

    fn load_program(mem: &mut FlatMemory, instrs: &[Instruction]) {
        let mut words = Vec::new();
        for i in instrs {
            words.extend(i.encode().unwrap());
        }
        mem.load_words(0, &words);
    }

    fn basic(
        op: Opcode,
        src1: SrcMode,
        src2: SrcMode,
        dst1: u8,
        dst2: u8,
        qp_inc: u8,
    ) -> Instruction {
        Instruction::Basic { op, src1, src2, dst1, dst2, qp_inc, cont: false }
    }

    const QP0: UWord = 0x8000_0400;

    #[test]
    fn thesis_example_sequence() {
        // plus++ r0,r1 :r0,r2  then  dup1 :r30   (thesis §5.3.4)
        let mut mem = FlatMemory::new();
        load_program(
            &mut mem,
            &[
                basic(Opcode::Plus, SrcMode::Imm(2), SrcMode::Imm(3), 0, REG_DUMMY, 0),
                basic(Opcode::Plus, SrcMode::Imm(10), SrcMode::Imm(4), 1, REG_DUMMY, 0),
                basic(Opcode::Plus, SrcMode::Window(0), SrcMode::Window(1), 0, 2, 2),
                Instruction::Dup { two: false, off1: 30, off2: 0, cont: false },
            ],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        let mut svc = NullServices;
        for _ in 0..4 {
            assert_eq!(pe.step(&mut mem, &mut svc), StepResult::Continue);
        }
        // After consuming 2, the sum 19 lands at new r0 and r2.
        assert_eq!(pe.regs.read_window(0), Some(19));
        assert_eq!(pe.regs.read_window(2), Some(19));
        // dup wrote the memory-resident queue slot 30 words past the front.
        assert_eq!(mem.peek(pe.regs.queue_slot_addr(30)), 19);
    }

    #[test]
    fn window_miss_fills_from_memory() {
        let mut mem = FlatMemory::new();
        // Queue page pre-loaded with operands (as after a context switch).
        mem.poke(QP0, 5);
        mem.poke(QP0 + 4, 7);
        load_program(
            &mut mem,
            &[basic(Opcode::Plus, SrcMode::Window(0), SrcMode::Window(1), 0, REG_DUMMY, 2)],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        assert_eq!(pe.step(&mut mem, &mut NullServices), StepResult::Continue);
        assert_eq!(pe.regs.read_window(0), Some(12));
        assert_eq!(pe.stats.window_misses, 2);
        assert_eq!(pe.stats.window_hits, 0);
    }

    #[test]
    fn fetch_and_store() {
        let mut mem = FlatMemory::new();
        mem.poke(0x0010_0100, 99);
        load_program(
            &mut mem,
            &[
                basic(
                    Opcode::Fetch,
                    SrcMode::ImmWord(0x0010_0100),
                    SrcMode::Imm(0),
                    0,
                    REG_DUMMY,
                    0,
                ),
                basic(
                    Opcode::Store,
                    SrcMode::ImmWord(0x0010_0200),
                    SrcMode::Window(0),
                    REG_DUMMY,
                    REG_DUMMY,
                    1,
                ),
            ],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        assert_eq!(pe.step(&mut mem, &mut NullServices), StepResult::Continue);
        assert_eq!(pe.step(&mut mem, &mut NullServices), StepResult::Continue);
        assert_eq!(mem.peek(0x0010_0200), 99);
        assert_eq!(pe.stats.mem_reads, 1);
        assert_eq!(pe.stats.mem_writes, 1);
    }

    #[test]
    fn branch_if_true_takes_byte_offset() {
        let mut mem = FlatMemory::new();
        load_program(
            &mut mem,
            &[
                // bne #-1 (true), skip one word forward.
                basic(Opcode::Bne, SrcMode::Imm(-1), SrcMode::Imm(4), REG_DUMMY, REG_DUMMY, 0),
                basic(Opcode::Plus, SrcMode::Imm(1), SrcMode::Imm(1), 17, REG_DUMMY, 0), // skipped
                basic(Opcode::Plus, SrcMode::Imm(2), SrcMode::Imm(2), 18, REG_DUMMY, 0),
            ],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        assert_eq!(pe.step(&mut mem, &mut NullServices), StepResult::Continue);
        assert_eq!(pe.regs.pc(), 8, "branch skipped the second instruction");
        assert_eq!(pe.step(&mut mem, &mut NullServices), StepResult::Continue);
        assert_eq!(pe.regs.read_global(17), 0, "skipped instruction never ran");
        assert_eq!(pe.regs.read_global(18), 4);
    }

    #[test]
    fn branch_if_false_not_taken_on_true() {
        let mut mem = FlatMemory::new();
        load_program(
            &mut mem,
            &[basic(Opcode::Beq, SrcMode::Imm(-1), SrcMode::Imm(8), REG_DUMMY, REG_DUMMY, 0)],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        pe.step(&mut mem, &mut NullServices);
        assert_eq!(pe.regs.pc(), 4, "fall through");
    }

    #[test]
    fn trap_reports_entry_and_destinations() {
        let mut mem = FlatMemory::new();
        load_program(&mut mem, &[basic(Opcode::Trap, SrcMode::Imm(3), SrcMode::Imm(7), 1, 2, 0)]);
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        let r = pe.step(&mut mem, &mut NullServices);
        assert_eq!(r, StepResult::Trap { entry: 3, arg: 7, dst1: 1, dst2: 2, fast: false });
        // Kernel can deposit results:
        pe.write_dst(1, 1001);
        pe.write_dst(2, 1002);
        assert_eq!(pe.regs.read_window(1), Some(1001));
        assert_eq!(pe.regs.read_window(2), Some(1002));
    }

    #[test]
    fn recv_blocks_then_resumes() {
        let mut mem = FlatMemory::new();
        load_program(
            &mut mem,
            &[basic(Opcode::Recv, SrcMode::Imm(5), SrcMode::Imm(0), 0, REG_DUMMY, 0)],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        let mut chans = BufferedChannels::new();
        assert_eq!(pe.step(&mut mem, &mut chans), StepResult::Blocked(BlockReason::RecvOn(5)));
        assert_eq!(pe.regs.pc(), 0, "PC unchanged while blocked");
        chans.push(5, 42);
        assert_eq!(pe.step(&mut mem, &mut chans), StepResult::Continue);
        assert_eq!(pe.regs.read_window(0), Some(42));
    }

    #[test]
    fn send_transfers_value() {
        let mut mem = FlatMemory::new();
        load_program(
            &mut mem,
            &[basic(Opcode::Send, SrcMode::Imm(9), SrcMode::Imm(13), REG_DUMMY, REG_DUMMY, 0)],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        let mut chans = BufferedChannels::new();
        assert_eq!(pe.step(&mut mem, &mut chans), StepResult::Continue);
        match chans.recv(0, 9) {
            RecvOutcome::Done { value, .. } => assert_eq!(value, 13),
            RecvOutcome::Block => panic!("value not delivered"),
        }
    }

    #[test]
    fn context_switch_rolls_out_and_lazily_refills() {
        let mut mem = FlatMemory::new();
        let mut pe = Pe::new(0);
        pe.reset(0x40, QP0);
        pe.regs.write_window(0, 11);
        pe.regs.write_window(1, 22);
        let saved = pe.switch_out(&mut mem);
        assert_eq!(pe.stats.rollouts, 2);
        assert_eq!(mem.peek(QP0), 11);
        assert_eq!(mem.peek(QP0 + 4), 22);
        // Another context runs… then we come back.
        pe.switch_in(&saved);
        assert_eq!(pe.regs.pc(), 0x40);
        assert_eq!(pe.regs.read_window(0), None, "presence bits clear after switch");
        // A read refills from the rolled-out queue page.
        load_program(
            &mut mem,
            &[basic(Opcode::Plus, SrcMode::Window(0), SrcMode::Window(1), 0, REG_DUMMY, 2)],
        );
        pe.regs.set_pc(0);
        assert_eq!(pe.step(&mut mem, &mut NullServices), StepResult::Continue);
        assert_eq!(pe.regs.read_window(0), Some(33));
    }

    #[test]
    fn pc_destination_jumps() {
        let mut mem = FlatMemory::new();
        load_program(
            &mut mem,
            &[basic(Opcode::Plus, SrcMode::ImmWord(0x100), SrcMode::Imm(0), REG_PC, REG_DUMMY, 0)],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        assert_eq!(pe.step(&mut mem, &mut NullServices), StepResult::Continue);
        assert_eq!(pe.regs.pc(), 0x100);
    }

    #[test]
    fn cycle_accounting_distinguishes_imm_words() {
        let mut mem = FlatMemory::new();
        load_program(
            &mut mem,
            &[
                basic(Opcode::Plus, SrcMode::Imm(1), SrcMode::Imm(2), REG_DUMMY, REG_DUMMY, 0),
                basic(Opcode::Plus, SrcMode::ImmWord(1), SrcMode::Imm(2), REG_DUMMY, REG_DUMMY, 0),
            ],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        pe.step(&mut mem, &mut NullServices);
        let after_first = pe.cycles;
        pe.step(&mut mem, &mut NullServices);
        assert_eq!(after_first, pe.model.base);
        assert_eq!(pe.cycles - after_first, pe.model.base + pe.model.imm_word);
    }

    #[test]
    fn comparison_feeds_branch() {
        let mut mem = FlatMemory::new();
        load_program(
            &mut mem,
            &[
                basic(Opcode::Lt, SrcMode::Imm(3), SrcMode::Imm(5), 0, REG_DUMMY, 0),
                basic(Opcode::Bne, SrcMode::Window(0), SrcMode::Imm(4), REG_DUMMY, REG_DUMMY, 1),
                basic(Opcode::Plus, SrcMode::Imm(1), SrcMode::Imm(0), 17, REG_DUMMY, 0), // skipped
                basic(Opcode::Plus, SrcMode::Imm(2), SrcMode::Imm(0), 18, REG_DUMMY, 0),
            ],
        );
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        for _ in 0..3 {
            assert_eq!(pe.step(&mut mem, &mut NullServices), StepResult::Continue);
        }
        assert_eq!(pe.regs.read_global(17), 0);
        assert_eq!(pe.regs.read_global(18), 2);
    }
}
