//! Memory interface and address-space map.
//!
//! The multiprocessor address space (thesis Fig. 5.18 / 6.3, adapted):
//!
//! ```text
//! 0x0000_0000 … 0x000F_FFFF   code     (pure; replicated per PE — free to
//!                                       fetch, never written at run time)
//! 0x0010_0000 … 0x7FFF_FFFF   global   shared data; the home PE is
//!                                       addr[27:24]; remote access goes
//!                                       over the partitioned ring bus
//! 0x8000_0000 … 0xFFFF_FFFF   local    per-PE private memory (queue pages,
//!                                       kernel context records); never
//!                                       remotely addressable
//! ```
//!
//! The PE reaches data memory through [`DataPort`], which reports the
//! extra cycles each access costs; `qm-sim` implements it with ring-bus
//! arbitration, while [`FlatMemory`] is the trivial single-PE
//! implementation used in unit tests.

use std::collections::HashMap;

use crate::{UWord, Word};

/// Base address of the (replicated, read-only) code segment.
pub const CODE_BASE: UWord = 0x0000_0000;
/// First address past the code segment.
pub const CODE_LIMIT: UWord = 0x0010_0000;
/// Base of the shared global data region.
pub const GLOBAL_BASE: UWord = 0x0010_0000;
/// Base of the per-PE local region.
pub const LOCAL_BASE: UWord = 0x8000_0000;

/// Home PE of a global address (bits 27:24).
#[must_use]
pub fn global_home(addr: UWord) -> usize {
    ((addr >> 24) & 0xF) as usize
}

/// True for addresses in the per-PE local region.
#[must_use]
pub fn is_local(addr: UWord) -> bool {
    addr >= LOCAL_BASE
}

/// How the PE reaches data memory. Every access returns the *extra*
/// cycles it cost beyond the instruction's base time (bus arbitration,
/// remote transfer…).
pub trait DataPort {
    /// Read a word. `pe` identifies the requesting processing element.
    fn read_word(&mut self, pe: usize, addr: UWord) -> (Word, u64);
    /// Write a word.
    fn write_word(&mut self, pe: usize, addr: UWord, value: Word) -> u64;
    /// Read a byte (zero-extended into a word, §5.3.1).
    fn read_byte(&mut self, pe: usize, addr: UWord) -> (Word, u64);
    /// Write the low byte of `value`.
    fn write_byte(&mut self, pe: usize, addr: UWord, value: Word) -> u64;
    /// Fetch a code word (instruction stream; charged inside the
    /// instruction base time, so no extra cycles are reported).
    fn fetch_code(&mut self, pe: usize, addr: UWord) -> u32;
}

/// A flat, sparse, zero-initialised memory shared by all PEs with zero
/// extra access cost. The single-PE test double for the bus model.
#[derive(Debug, Clone, Default)]
pub struct FlatMemory {
    words: HashMap<UWord, Word>,
}

impl FlatMemory {
    /// New empty memory (all locations read as zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a block of raw words at `base` (word-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned.
    pub fn load_words(&mut self, base: UWord, words: &[u32]) {
        assert_eq!(base & 3, 0, "base must be word aligned");
        for (i, &w) in words.iter().enumerate() {
            #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
            self.words.insert(base + 4 * i as UWord, w as Word);
        }
    }

    /// Peek a word without going through the port interface.
    #[must_use]
    pub fn peek(&self, addr: UWord) -> Word {
        debug_assert_eq!(addr & 3, 0);
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Poke a word directly.
    pub fn poke(&mut self, addr: UWord, value: Word) {
        debug_assert_eq!(addr & 3, 0);
        self.words.insert(addr, value);
    }
}

impl DataPort for FlatMemory {
    fn read_word(&mut self, _pe: usize, addr: UWord) -> (Word, u64) {
        (self.peek(addr & !3), 0)
    }

    fn write_word(&mut self, _pe: usize, addr: UWord, value: Word) -> u64 {
        self.poke(addr & !3, value);
        0
    }

    fn read_byte(&mut self, _pe: usize, addr: UWord) -> (Word, u64) {
        let word = self.peek(addr & !3);
        let shift = (addr & 3) * 8;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
        (((word as u32 >> shift) & 0xFF) as Word, 0)
    }

    fn write_byte(&mut self, _pe: usize, addr: UWord, value: Word) -> u64 {
        let aligned = addr & !3;
        let shift = (addr & 3) * 8;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
        {
            let old = self.peek(aligned) as u32;
            let merged = (old & !(0xFFu32 << shift)) | (((value as u32) & 0xFF) << shift);
            self.poke(aligned, merged as Word);
        }
        0
    }

    fn fetch_code(&mut self, _pe: usize, addr: UWord) -> u32 {
        #[allow(clippy::cast_sign_loss)]
        {
            self.peek(addr & !3) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        let mut m = FlatMemory::new();
        assert_eq!(m.read_word(0, 0x100).0, 0);
        m.write_word(0, 0x100, -42);
        assert_eq!(m.read_word(0, 0x100).0, -42);
    }

    #[test]
    fn byte_access_is_little_endian_within_word() {
        let mut m = FlatMemory::new();
        m.write_word(0, 0x200, 0x0403_0201);
        assert_eq!(m.read_byte(0, 0x200).0, 0x01);
        assert_eq!(m.read_byte(0, 0x201).0, 0x02);
        assert_eq!(m.read_byte(0, 0x203).0, 0x04);
        m.write_byte(0, 0x201, 0xFF);
        assert_eq!(m.read_word(0, 0x200).0, 0x0403_FF01);
        assert_eq!(m.read_byte(0, 0x201).0, 0xFF, "bytes are zero-extended");
    }

    #[test]
    fn address_map_helpers() {
        assert!(is_local(0x8000_0000));
        assert!(!is_local(0x0010_0000));
        assert_eq!(global_home(0x0110_0000), 1);
        assert_eq!(global_home(0x0010_0000), 0);
    }

    #[test]
    fn load_words_places_code() {
        let mut m = FlatMemory::new();
        m.load_words(CODE_BASE, &[0xDEAD_BEEF, 0x0000_0001]);
        assert_eq!(m.fetch_code(0, CODE_BASE), 0xDEAD_BEEF);
        assert_eq!(m.fetch_code(0, CODE_BASE + 4), 1);
    }
}
