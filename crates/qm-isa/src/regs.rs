//! PE register file: window registers, globals, queue paging (§5.2–5.3).
//!
//! The operand queue lives in a page of memory addressed by the queue
//! pointer `QP` (register 30). The first 16 queue elements are shadowed by
//! 16 physical *window registers*, each with a presence bit. Virtual
//! register `r0` always names the front of the queue; the physical
//! register backing it rotates as `QP` advances (Fig. 5.3). The 8-bit page
//! offset mask `POM` (register 29) selects the queue page size — a power
//! of two between 1 and 256 words — by choosing which page-offset bits
//! increment and which stay fixed (Fig. 5.5).

use crate::isa::{REG_PC, REG_POM, REG_QP};
use crate::{UWord, Word};

/// Number of window registers.
pub const WINDOW_SIZE: usize = 16;

/// The PE register file.
///
/// Laid out structure-of-arrays style for the simulator's hot path: the
/// window values are one flat array and the 16 presence bits are a
/// single `u16` mask, so clearing consumed registers, counting present
/// ones and rolling out on a context switch are word operations instead
/// of per-element flag walks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    /// Physical window registers (rotating).
    window: [Word; WINDOW_SIZE],
    /// Presence bits, one per physical window register (bit `i` =
    /// physical register `i`).
    presence: u16,
    /// Global registers `r16…r31` (index 0 = r16).
    globals: [Word; 16],
}

/// Window registers rolled out on a context switch: up to
/// [`WINDOW_SIZE`] `(address, value)` pairs in ascending virtual-register
/// order, in a fixed-size buffer — built without heap allocation, the
/// property the simulator's steady-state allocation test pins.
#[derive(Debug, Clone, Copy)]
pub struct Rollout {
    entries: [(UWord, Word); WINDOW_SIZE],
    len: usize,
}

impl Rollout {
    /// The rolled-out `(address, value)` pairs.
    #[must_use]
    pub fn as_slice(&self) -> &[(UWord, Word)] {
        &self.entries[..self.len]
    }

    /// Number of registers rolled out.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing was present to roll out.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for Rollout {
    type Target = [(UWord, Word)];

    fn deref(&self) -> &Self::Target {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a Rollout {
    type Item = &'a (UWord, Word);
    type IntoIter = std::slice::Iter<'a, (UWord, Word)>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

/// State captured on a context switch (window contents are rolled out to
/// the memory-resident queue page, so only the globals need saving).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedRegisters {
    /// Global registers `r16…r31`.
    pub globals: [Word; 16],
}

impl RegisterFile {
    /// A register file with everything zeroed and all presence bits clear.
    #[must_use]
    pub fn new() -> Self {
        RegisterFile { window: [0; WINDOW_SIZE], presence: 0, globals: [0; 16] }
    }

    /// The queue pointer (`r30`).
    #[must_use]
    pub fn qp(&self) -> UWord {
        #[allow(clippy::cast_sign_loss)]
        {
            self.globals[usize::from(REG_QP - 16)] as UWord
        }
    }

    /// Set the queue pointer.
    pub fn set_qp(&mut self, qp: UWord) {
        #[allow(clippy::cast_possible_wrap)]
        {
            self.globals[usize::from(REG_QP - 16)] = qp as Word;
        }
    }

    /// The page offset mask (`r29`, low 8 bits significant).
    #[must_use]
    pub fn pom(&self) -> u8 {
        #[allow(clippy::cast_sign_loss)]
        {
            (self.globals[usize::from(REG_POM - 16)] as UWord & 0xFF) as u8
        }
    }

    /// Set the page offset mask.
    pub fn set_pom(&mut self, pom: u8) {
        self.globals[usize::from(REG_POM - 16)] = Word::from(pom);
    }

    /// The program counter (`r31`).
    #[must_use]
    pub fn pc(&self) -> UWord {
        #[allow(clippy::cast_sign_loss)]
        {
            self.globals[usize::from(REG_PC - 16)] as UWord
        }
    }

    /// Set the program counter.
    pub fn set_pc(&mut self, pc: UWord) {
        #[allow(clippy::cast_possible_wrap)]
        {
            self.globals[usize::from(REG_PC - 16)] = pc as Word;
        }
    }

    /// Virtual window register number → physical register number
    /// (Fig. 5.3): `(vreg + QP[5:2]) mod 16`.
    #[must_use]
    pub fn vreg_to_phys(&self, vreg: u8) -> usize {
        debug_assert!(vreg < 16);
        ((usize::from(vreg)) + ((self.qp() as usize >> 2) & 0xF)) & 0xF
    }

    /// Memory address of virtual window register `vreg` (Fig. 5.5).
    ///
    /// POM bit `i` set selects page-offset bit `i+2` from `QP` unchanged
    /// (fixed — outside the wrapping page); clear selects it from
    /// `QP + 4·vreg` (incrementing — inside the page).
    #[must_use]
    pub fn vreg_to_addr(&self, vreg: u8) -> UWord {
        debug_assert!(vreg < 16);
        self.queue_slot_addr(u32::from(vreg))
    }

    /// Memory address of the queue slot `offset` words past the front
    /// (generalisation of [`RegisterFile::vreg_to_addr`] used by `dup`,
    /// whose offsets reach 255).
    #[must_use]
    pub fn queue_slot_addr(&self, offset: u32) -> UWord {
        let qp = self.qp();
        let qoff = qp & 0x3FF;
        let sum = qoff.wrapping_add(4 * offset);
        let mask = (u32::from(self.pom()) << 2) | 0x3; // POM guards bits [9:2]
        let page_off = (qoff & mask) | (sum & !mask & 0x3FF);
        (qp & !0x3FF) | page_off
    }

    /// Advance the queue pointer by `inc` words, wrapping within the
    /// POM-selected page, and clear the presence bits of the consumed
    /// window registers.
    pub fn advance_qp(&mut self, inc: u8) {
        debug_assert!(inc <= 7);
        for v in 0..inc {
            let phys = self.vreg_to_phys(v);
            self.presence &= !(1u16 << phys);
        }
        let qp = self.qp();
        let qoff = qp & 0x3FF;
        let sum = qoff.wrapping_add(4 * u32::from(inc));
        let mask = (u32::from(self.pom()) << 2) | 0x3;
        let page_off = (qoff & mask) | (sum & !mask & 0x3FF);
        self.set_qp((qp & !0x3FF) | page_off);
    }

    /// Read a window register if its presence bit is set.
    #[must_use]
    pub fn read_window(&self, vreg: u8) -> Option<Word> {
        let phys = self.vreg_to_phys(vreg);
        (self.presence & (1u16 << phys) != 0).then(|| self.window[phys])
    }

    /// Write a window register and set its presence bit.
    pub fn write_window(&mut self, vreg: u8, value: Word) {
        let phys = self.vreg_to_phys(vreg);
        self.window[phys] = value;
        self.presence |= 1u16 << phys;
    }

    /// Fill a window register from memory *without* marking it more
    /// recent than memory (presence set; used on a read miss).
    pub fn fill_window(&mut self, vreg: u8, value: Word) {
        self.write_window(vreg, value);
    }

    /// Read a global register `r16…r31`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not in `16..32`.
    #[must_use]
    pub fn read_global(&self, reg: u8) -> Word {
        assert!((16..32).contains(&reg));
        self.globals[usize::from(reg - 16)]
    }

    /// Write a global register `r16…r31`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not in `16..32`.
    pub fn write_global(&mut self, reg: u8, value: Word) {
        assert!((16..32).contains(&reg));
        self.globals[usize::from(reg - 16)] = value;
    }

    /// Roll out all present window registers for a context switch: returns
    /// `(address, value)` pairs to write back to the memory-resident queue
    /// page, clearing every presence bit. The pairs come back in a
    /// fixed-size [`Rollout`] buffer — no heap allocation, so context
    /// switches stay off the allocator in steady state.
    pub fn rollout(&mut self) -> Rollout {
        let mut out = Rollout { entries: [(0, 0); WINDOW_SIZE], len: 0 };
        if self.presence == 0 {
            return out;
        }
        for v in 0..16u8 {
            let phys = self.vreg_to_phys(v);
            if self.presence & (1u16 << phys) != 0 {
                out.entries[out.len] = (self.vreg_to_addr(v), self.window[phys]);
                out.len += 1;
            }
        }
        self.presence = 0;
        out
    }

    /// Number of presence bits currently set.
    #[must_use]
    pub fn present_count(&self) -> usize {
        self.presence.count_ones() as usize
    }

    /// Snapshot the globals for a context switch.
    #[must_use]
    pub fn save(&self) -> SavedRegisters {
        SavedRegisters { globals: self.globals }
    }

    /// Restore globals saved by [`RegisterFile::save`]; presence bits
    /// start cleared, so operands refill lazily from the queue page
    /// (§5.2: "operands are automatically restored by the normal
    /// execution mechanism").
    pub fn restore(&mut self, saved: &SavedRegisters) {
        self.globals = saved.globals;
        self.presence = 0;
    }

    /// Complete mid-run state — window contents, presence bits, globals —
    /// for external serialization (simulator snapshots). Unlike
    /// [`RegisterFile::save`], nothing is rolled out or cleared: the
    /// triple reproduces the file bit-for-bit via
    /// [`RegisterFile::restore_full`].
    #[must_use]
    pub fn full_state(&self) -> ([Word; WINDOW_SIZE], [bool; WINDOW_SIZE], [Word; 16]) {
        let mut presence = [false; WINDOW_SIZE];
        for (i, p) in presence.iter_mut().enumerate() {
            *p = self.presence & (1u16 << i) != 0;
        }
        (self.window, presence, self.globals)
    }

    /// Restore the exact state captured by [`RegisterFile::full_state`].
    pub fn restore_full(
        &mut self,
        window: [Word; WINDOW_SIZE],
        presence: [bool; WINDOW_SIZE],
        globals: [Word; 16],
    ) {
        self.window = window;
        self.presence = 0;
        for (i, &p) in presence.iter().enumerate() {
            if p {
                self.presence |= 1u16 << i;
            }
        }
        self.globals = globals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vreg_rotation_follows_qp() {
        let mut r = RegisterFile::new();
        r.set_qp(0x8000_0000);
        assert_eq!(r.vreg_to_phys(0), 0);
        assert_eq!(r.vreg_to_phys(15), 15);
        r.advance_qp(2);
        assert_eq!(r.vreg_to_phys(0), 2, "front moved two registers on");
        assert_eq!(r.vreg_to_phys(14), 0, "physical 0 is now r14");
    }

    #[test]
    fn window_value_survives_qp_advance_under_new_name() {
        let mut r = RegisterFile::new();
        r.set_qp(0x8000_0000);
        r.write_window(2, 77);
        r.advance_qp(2);
        assert_eq!(r.read_window(0), Some(77), "r2 became r0");
    }

    #[test]
    fn consumed_registers_lose_presence() {
        let mut r = RegisterFile::new();
        r.set_qp(0x8000_0000);
        r.write_window(0, 1);
        r.write_window(1, 2);
        r.advance_qp(2);
        assert_eq!(r.present_count(), 0);
        // The slots 14/15 (old 0/1) read as absent.
        assert_eq!(r.read_window(14), None);
        assert_eq!(r.read_window(15), None);
    }

    #[test]
    fn addresses_advance_with_qp() {
        let mut r = RegisterFile::new();
        r.set_qp(0x8000_0000);
        r.set_pom(0x00); // 256-word page
        assert_eq!(r.vreg_to_addr(0), 0x8000_0000);
        assert_eq!(r.vreg_to_addr(3), 0x8000_000C);
        r.advance_qp(1);
        assert_eq!(r.vreg_to_addr(0), 0x8000_0004);
    }

    #[test]
    fn pom_wraps_the_page() {
        let mut r = RegisterFile::new();
        // POM = 0b1110_0000: three fixed bits → 2^5 = 32-word page.
        r.set_pom(0b1110_0000);
        r.set_qp(0x8000_0000 + 31 * 4); // last word of the 32-word page
        assert_eq!(r.vreg_to_addr(0), 0x8000_0000 + 31 * 4);
        assert_eq!(r.vreg_to_addr(1), 0x8000_0000, "wraps to page start");
        r.advance_qp(2);
        assert_eq!(r.qp(), 0x8000_0004, "QP wrapped within the 32-word page");
    }

    #[test]
    fn full_page_wrap_at_256_words() {
        let mut r = RegisterFile::new();
        r.set_pom(0x00);
        r.set_qp(0x8000_0000 + 255 * 4);
        r.advance_qp(1);
        assert_eq!(r.qp(), 0x8000_0000);
    }

    #[test]
    fn rollout_writes_only_present_registers() {
        let mut r = RegisterFile::new();
        r.set_qp(0x8000_0100);
        r.write_window(0, 10);
        r.write_window(5, 50);
        let out = r.rollout();
        assert_eq!(out.as_slice(), [(0x8000_0100, 10), (0x8000_0114, 50)]);
        assert_eq!(out.len(), 2);
        assert_eq!(r.present_count(), 0);
        assert!(r.rollout().is_empty(), "second rollout is empty");
    }

    #[test]
    fn save_restore_round_trip() {
        let mut r = RegisterFile::new();
        r.set_pc(0x1234);
        r.set_qp(0x8000_0000);
        r.write_global(17, -5);
        r.write_window(0, 9);
        let saved = r.save();
        let mut other = RegisterFile::new();
        other.restore(&saved);
        assert_eq!(other.pc(), 0x1234);
        assert_eq!(other.read_global(17), -5);
        assert_eq!(other.present_count(), 0, "presence bits start clear after restore");
    }

    #[test]
    fn full_state_round_trips_presence_and_window() {
        let mut r = RegisterFile::new();
        r.set_qp(0x8000_0000);
        r.set_pc(0x40);
        r.write_window(0, 11);
        r.write_window(3, 33);
        r.write_global(20, -7);
        let (w, p, g) = r.full_state();
        let mut other = RegisterFile::new();
        other.restore_full(w, p, g);
        assert_eq!(other, r, "full_state/restore_full is exact, presence included");
        assert_eq!(other.read_window(3), Some(33));
        assert_eq!(other.present_count(), 2);
    }

    #[test]
    fn special_register_accessors() {
        let mut r = RegisterFile::new();
        r.set_pom(0xF0);
        assert_eq!(r.pom(), 0xF0);
        assert_eq!(r.read_global(REG_POM), 0xF0);
        r.write_global(REG_QP, 0x100);
        assert_eq!(r.qp(), 0x100);
    }
}
