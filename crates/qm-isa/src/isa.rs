//! Instruction set of the queue machine PE (thesis §5.3, Tables 5.1–5.2).
//!
//! All instructions are one 32-bit word, optionally followed by immediate
//! constant words. Two formats exist:
//!
//! **Basic format** (Fig. 5.6) — four-address:
//!
//! ```text
//! 31      26 25    20 19    14 13   9 8    4 3    1 0
//! [ opcode ] [ src1 ] [ src2 ] [dst1 ] [dst2 ] [qp+ ] [c]
//! ```
//!
//! **Dup format** (Fig. 5.7) — two 8-bit queue offsets:
//!
//! ```text
//! 31      26 25        18 17        10 9ꞏꞏꞏ1 0
//! [ opcode ] [  dst1 8b  ] [  dst2 8b  ] [ 0 ] [c]
//! ```
//!
//! Source operand modes (Table 5.1): `00nnnn` window register, `01nnnn`
//! global register, `110000` immediate word follows, `1nnnnn` small
//! immediate −15…15.

use crate::{IsaError, Result, Word};

/// Register number of the DUMMY destination (results written here are
/// discarded). By the thesis convention this is `R16`, the first global.
pub const REG_DUMMY: u8 = 16;
/// Register number of the NAK address register.
pub const REG_NAR: u8 = 28;
/// Register number of the page offset mask.
pub const REG_POM: u8 = 29;
/// Register number of the queue pointer.
pub const REG_QP: u8 = 30;
/// Register number of the program counter.
pub const REG_PC: u8 = 31;

/// Operation codes (Table 5.2, octal). `mul`/`div`/`mod` fill the space
/// the thesis explicitly reserves in the arithmetic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants mirror Table 5.2 one-to-one
pub enum Opcode {
    Dup1,
    Dup2,
    Send,
    Store,
    Storb,
    Recv,
    Fetch,
    Fchb,
    Or,
    And,
    Xor,
    Lshift,
    Rshift,
    Plus,
    Minus,
    Mul,
    Div,
    Mod,
    Ge,
    Ne,
    Gt,
    Lt,
    Eq,
    Le,
    His,
    Hi,
    Lo,
    Los,
    Bne,
    Beq,
    Ftrap,
    Trap,
    Fret,
    Rett,
}

impl Opcode {
    /// All opcodes with their octal codes, Table 5.2 order.
    pub const ALL: [(Opcode, u8); 34] = [
        (Opcode::Dup1, 0o00),
        (Opcode::Dup2, 0o04),
        (Opcode::Send, 0o10),
        (Opcode::Store, 0o11),
        (Opcode::Storb, 0o13),
        (Opcode::Recv, 0o14),
        (Opcode::Fetch, 0o15),
        (Opcode::Fchb, 0o17),
        (Opcode::Or, 0o20),
        (Opcode::And, 0o21),
        (Opcode::Xor, 0o22),
        (Opcode::Lshift, 0o23),
        (Opcode::Rshift, 0o24),
        (Opcode::Plus, 0o30),
        (Opcode::Minus, 0o31),
        (Opcode::Mul, 0o32),
        (Opcode::Div, 0o33),
        (Opcode::Mod, 0o34),
        (Opcode::Ge, 0o41),
        (Opcode::Ne, 0o42),
        (Opcode::Gt, 0o43),
        (Opcode::Lt, 0o45),
        (Opcode::Eq, 0o46),
        (Opcode::Le, 0o47),
        (Opcode::His, 0o50),
        (Opcode::Hi, 0o52),
        (Opcode::Lo, 0o54),
        (Opcode::Los, 0o56),
        (Opcode::Bne, 0o62),
        (Opcode::Beq, 0o66),
        (Opcode::Ftrap, 0o70),
        (Opcode::Trap, 0o71),
        (Opcode::Fret, 0o74),
        (Opcode::Rett, 0o75),
    ];

    /// Dense decode table indexed by the 6-bit opcode value, built at
    /// compile time from [`Opcode::ALL`]. Decode sits on the simulator's
    /// hottest path (once per simulated instruction), so the lookup must
    /// not scan the table.
    const FROM_CODE: [Option<Opcode>; 64] = {
        let mut t = [None; 64];
        let mut i = 0;
        while i < Self::ALL.len() {
            let (op, code) = Self::ALL[i];
            t[code as usize] = Some(op);
            i += 1;
        }
        t
    };

    /// The 6-bit opcode value.
    #[must_use]
    pub fn code(self) -> u8 {
        Self::ALL.iter().find(|(op, _)| *op == self).expect("all opcodes listed").1
    }

    /// Decode a 6-bit opcode value.
    #[inline]
    #[must_use]
    pub fn from_code(code: u8) -> Option<Opcode> {
        if code < 64 {
            Self::FROM_CODE[code as usize]
        } else {
            None
        }
    }

    /// Assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Dup1 => "dup1",
            Opcode::Dup2 => "dup2",
            Opcode::Send => "send",
            Opcode::Store => "store",
            Opcode::Storb => "storb",
            Opcode::Recv => "recv",
            Opcode::Fetch => "fetch",
            Opcode::Fchb => "fchb",
            Opcode::Or => "or",
            Opcode::And => "and",
            Opcode::Xor => "xor",
            Opcode::Lshift => "lshift",
            Opcode::Rshift => "rshift",
            Opcode::Plus => "plus",
            Opcode::Minus => "minus",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Mod => "mod",
            Opcode::Ge => "ge",
            Opcode::Ne => "ne",
            Opcode::Gt => "gt",
            Opcode::Lt => "lt",
            Opcode::Eq => "eq",
            Opcode::Le => "le",
            Opcode::His => "his",
            Opcode::Hi => "hi",
            Opcode::Lo => "lo",
            Opcode::Los => "los",
            Opcode::Bne => "bne",
            Opcode::Beq => "beq",
            Opcode::Ftrap => "ftrap",
            Opcode::Trap => "trap",
            Opcode::Fret => "fret",
            Opcode::Rett => "rett",
        }
    }

    /// Look up an opcode by mnemonic.
    #[must_use]
    pub fn from_mnemonic(m: &str) -> Option<Opcode> {
        Self::ALL.iter().map(|&(op, _)| op).find(|op| op.mnemonic() == m)
    }

    /// True for the `dup` instruction format.
    #[must_use]
    pub fn is_dup(self) -> bool {
        matches!(self, Opcode::Dup1 | Opcode::Dup2)
    }

    /// True for two's-complement or unsigned comparison operations
    /// (Boolean result: all-ones true, all-zeroes false).
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            Opcode::Ge
                | Opcode::Ne
                | Opcode::Gt
                | Opcode::Lt
                | Opcode::Eq
                | Opcode::Le
                | Opcode::His
                | Opcode::Hi
                | Opcode::Lo
                | Opcode::Los
        )
    }

    /// Apply a pure two-operand ALU/compare operation.
    ///
    /// Returns `None` for operations with side effects (memory, channel,
    /// branch, trap, dup), whose semantics live in the PE emulator.
    /// Division by zero yields 0 with no fault (the emulator raises a NAK
    /// separately if configured to).
    #[inline]
    #[must_use]
    pub fn alu(self, a: Word, b: Word) -> Option<Word> {
        let bool_word = |v: bool| if v { -1 } else { 0 };
        #[allow(clippy::cast_sign_loss)]
        let (ua, ub) = (a as u32, b as u32);
        Some(match self {
            Opcode::Or => a | b,
            Opcode::And => a & b,
            Opcode::Xor => a ^ b,
            Opcode::Lshift => a.wrapping_shl(b.rem_euclid(32) as u32),
            Opcode::Rshift => a.wrapping_shr(b.rem_euclid(32) as u32),
            Opcode::Plus => a.wrapping_add(b),
            Opcode::Minus => a.wrapping_sub(b),
            Opcode::Mul => a.wrapping_mul(b),
            Opcode::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            Opcode::Mod => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            Opcode::Ge => bool_word(a >= b),
            Opcode::Ne => bool_word(a != b),
            Opcode::Gt => bool_word(a > b),
            Opcode::Lt => bool_word(a < b),
            Opcode::Eq => bool_word(a == b),
            Opcode::Le => bool_word(a <= b),
            Opcode::His => bool_word(ua >= ub),
            Opcode::Hi => bool_word(ua > ub),
            Opcode::Lo => bool_word(ua < ub),
            Opcode::Los => bool_word(ua <= ub),
            _ => return None,
        })
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A source operand specifier (Table 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcMode {
    /// One of the 16 virtual window registers `r0…r15`.
    Window(u8),
    /// One of the 16 global registers `r16…r31` (stored as 16…31).
    Global(u8),
    /// Small immediate constant, −15…15.
    Imm(i8),
    /// Full-word immediate following the instruction; the value is kept
    /// alongside for convenience but is encoded as a separate word.
    ImmWord(Word),
}

impl SrcMode {
    /// Encode to the 6-bit source field. An [`SrcMode::ImmWord`]'s value
    /// is *not* part of the field — the caller emits it as the next word.
    ///
    /// # Errors
    ///
    /// Out-of-range register numbers or immediates.
    pub fn encode(self) -> Result<u8> {
        match self {
            SrcMode::Window(n) if n < 16 => Ok(n),
            SrcMode::Window(n) => Err(IsaError::Encode(format!("window register {n} > 15"))),
            SrcMode::Global(n) if (16..32).contains(&n) => Ok(0b01_0000 | (n - 16)),
            SrcMode::Global(n) => {
                Err(IsaError::Encode(format!("global register {n} not in 16..32")))
            }
            SrcMode::Imm(v) if (-15..=15).contains(&v) =>
            {
                #[allow(clippy::cast_sign_loss)]
                Ok(0b10_0000 | ((v as u8) & 0b1_1111))
            }
            SrcMode::Imm(v) => {
                Err(IsaError::Encode(format!("small immediate {v} not in -15..=15")))
            }
            SrcMode::ImmWord(_) => Ok(0b11_0000),
        }
    }

    /// Decode a 6-bit source field. [`SrcMode::ImmWord`] is returned with
    /// a placeholder value of 0; the caller patches in the following word.
    #[inline]
    #[must_use]
    pub fn decode(field: u8) -> SrcMode {
        let field = field & 0b11_1111;
        match field >> 4 {
            0b00 => SrcMode::Window(field & 0xF),
            0b01 => SrcMode::Global(16 + (field & 0xF)),
            _ => {
                if field == 0b11_0000 {
                    SrcMode::ImmWord(0)
                } else {
                    // Sign-extend the low 5 bits.
                    let v = ((field & 0b1_1111) << 3) as i8 >> 3;
                    SrcMode::Imm(v)
                }
            }
        }
    }

    /// True when an immediate word follows the instruction.
    #[must_use]
    pub fn needs_word(self) -> bool {
        matches!(self, SrcMode::ImmWord(_))
    }
}

impl std::fmt::Display for SrcMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SrcMode::Window(n) => write!(f, "r{n}"),
            SrcMode::Global(n) => write!(f, "r{n}"),
            SrcMode::Imm(v) => write!(f, "#{v}"),
            SrcMode::ImmWord(v) => write!(f, "#{v}"),
        }
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// The four-address basic format.
    Basic {
        /// Operation.
        op: Opcode,
        /// First source operand.
        src1: SrcMode,
        /// Second source operand.
        src2: SrcMode,
        /// First destination register (16 = DUMMY = discard).
        dst1: u8,
        /// Second destination register (16 = DUMMY = discard).
        dst2: u8,
        /// Words removed from the queue front (0–7).
        qp_inc: u8,
        /// Continue flag: the next instruction uses this result;
        /// no context switch may intervene.
        cont: bool,
    },
    /// The `dup` format: store the previous result at queue offsets.
    Dup {
        /// `dup2` stores at both offsets; `dup1` only at the first.
        two: bool,
        /// First queue word offset (0–255).
        off1: u8,
        /// Second queue word offset (0–255), used by `dup2`.
        off2: u8,
        /// Continue flag.
        cont: bool,
    },
}

impl Instruction {
    /// Shorthand for a basic instruction with no destinations and no
    /// queue increment.
    #[must_use]
    pub fn basic(op: Opcode, src1: SrcMode, src2: SrcMode) -> Self {
        Instruction::Basic {
            op,
            src1,
            src2,
            dst1: REG_DUMMY,
            dst2: REG_DUMMY,
            qp_inc: 0,
            cont: false,
        }
    }

    /// The opcode of the instruction.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::Basic { op, .. } => *op,
            Instruction::Dup { two, .. } => {
                if *two {
                    Opcode::Dup2
                } else {
                    Opcode::Dup1
                }
            }
        }
    }

    /// The continue flag.
    #[must_use]
    pub fn cont(&self) -> bool {
        match self {
            Instruction::Basic { cont, .. } | Instruction::Dup { cont, .. } => *cont,
        }
    }

    /// Total encoded size in words (1 + immediate words).
    #[must_use]
    pub fn size_words(&self) -> usize {
        match self {
            Instruction::Basic { src1, src2, .. } => {
                1 + usize::from(src1.needs_word()) + usize::from(src2.needs_word())
            }
            Instruction::Dup { .. } => 1,
        }
    }

    /// Encode the instruction into one or more 32-bit words.
    ///
    /// # Errors
    ///
    /// Field values out of range.
    pub fn encode(&self) -> Result<Vec<u32>> {
        match *self {
            Instruction::Basic { op, src1, src2, dst1, dst2, qp_inc, cont } => {
                if op.is_dup() {
                    return Err(IsaError::Encode("dup uses the dup format".into()));
                }
                if dst1 > 31 || dst2 > 31 {
                    return Err(IsaError::Encode(format!(
                        "destination out of range: {dst1},{dst2}"
                    )));
                }
                if qp_inc > 7 {
                    return Err(IsaError::Encode(format!("qp increment {qp_inc} > 7")));
                }
                let mut word = u32::from(op.code()) << 26;
                word |= u32::from(src1.encode()?) << 20;
                word |= u32::from(src2.encode()?) << 14;
                word |= u32::from(dst1) << 9;
                word |= u32::from(dst2) << 4;
                word |= u32::from(qp_inc) << 1;
                word |= u32::from(cont);
                let mut out = vec![word];
                if let SrcMode::ImmWord(v) = src1 {
                    #[allow(clippy::cast_sign_loss)]
                    out.push(v as u32);
                }
                if let SrcMode::ImmWord(v) = src2 {
                    #[allow(clippy::cast_sign_loss)]
                    out.push(v as u32);
                }
                Ok(out)
            }
            Instruction::Dup { two, off1, off2, cont } => {
                let op = if two { Opcode::Dup2 } else { Opcode::Dup1 };
                let mut word = u32::from(op.code()) << 26;
                word |= u32::from(off1) << 18;
                word |= u32::from(off2) << 10;
                word |= u32::from(cont);
                Ok(vec![word])
            }
        }
    }

    /// Decode an instruction starting at `words[0]`; immediate words are
    /// taken from the following slice entries. Returns the instruction
    /// and the number of words consumed.
    ///
    /// # Errors
    ///
    /// Unknown opcode, or missing immediate words.
    pub fn decode(words: &[u32]) -> Result<(Instruction, usize)> {
        let Some(&w) = words.first() else {
            return Err(IsaError::Decode { word: 0, msg: "empty instruction stream".into() });
        };
        let code = ((w >> 26) & 0x3F) as u8;
        let Some(op) = Opcode::from_code(code) else {
            return Err(IsaError::Decode { word: w, msg: format!("unknown opcode {code:#o}") });
        };
        if op.is_dup() {
            let two = op == Opcode::Dup2;
            return Ok((
                Instruction::Dup {
                    two,
                    off1: ((w >> 18) & 0xFF) as u8,
                    // dup1 ignores the second offset at execution time, but
                    // the bits are still architecturally present in the
                    // word; preserve them so decode is a faithful inverse
                    // of encode for every Dup value.
                    off2: ((w >> 10) & 0xFF) as u8,
                    cont: w & 1 != 0,
                },
                1,
            ));
        }
        let mut used = 1usize;
        let mut take_imm = |mode: SrcMode| -> Result<SrcMode> {
            if let SrcMode::ImmWord(_) = mode {
                let Some(&v) = words.get(used) else {
                    return Err(IsaError::Decode { word: w, msg: "missing immediate word".into() });
                };
                used += 1;
                #[allow(clippy::cast_possible_wrap)]
                Ok(SrcMode::ImmWord(v as Word))
            } else {
                Ok(mode)
            }
        };
        let src1 = take_imm(SrcMode::decode(((w >> 20) & 0x3F) as u8))?;
        let src2 = take_imm(SrcMode::decode(((w >> 14) & 0x3F) as u8))?;
        Ok((
            Instruction::Basic {
                op,
                src1,
                src2,
                dst1: ((w >> 9) & 0x1F) as u8,
                dst2: ((w >> 4) & 0x1F) as u8,
                qp_inc: ((w >> 1) & 0x7) as u8,
                cont: w & 1 != 0,
            },
            used,
        ))
    }
}

impl std::fmt::Display for Instruction {
    /// Thesis assembly syntax: `opcode+n src1,src2 :dst1,dst2 >`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instruction::Basic { op, src1, src2, dst1, dst2, qp_inc, cont } => {
                write!(f, "{op}")?;
                if *qp_inc > 0 {
                    write!(f, "+{qp_inc}")?;
                }
                write!(f, " {src1},{src2}")?;
                match (*dst1 != REG_DUMMY, *dst2 != REG_DUMMY) {
                    (true, true) => write!(f, " :r{dst1},r{dst2}")?,
                    (true, false) => write!(f, " :r{dst1}")?,
                    (false, true) => write!(f, " :r{REG_DUMMY},r{dst2}")?,
                    (false, false) => {}
                }
                if *cont {
                    write!(f, " >")?;
                }
                Ok(())
            }
            Instruction::Dup { two, off1, off2, cont } => {
                if *two {
                    write!(f, "dup2 :r{off1},r{off2}")?;
                } else if *off2 != 0 {
                    // dup1 ignores the second offset, but it is encoded in
                    // the word; keep it visible so the disassembly
                    // reassembles to the same bits.
                    write!(f, "dup1 :r{off1},r{off2}")?;
                } else {
                    write!(f, "dup1 :r{off1}")?;
                }
                if *cont {
                    write!(f, " >")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_codes_are_unique_and_round_trip() {
        for &(op, code) in &Opcode::ALL {
            assert_eq!(op.code(), code);
            assert_eq!(Opcode::from_code(code), Some(op));
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        let mut codes: Vec<u8> = Opcode::ALL.iter().map(|&(_, c)| c).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Opcode::ALL.len());
    }

    #[test]
    fn table_5_2_octal_assignments() {
        assert_eq!(Opcode::Dup1.code(), 0o00);
        assert_eq!(Opcode::Dup2.code(), 0o04);
        assert_eq!(Opcode::Send.code(), 0o10);
        assert_eq!(Opcode::Store.code(), 0o11);
        assert_eq!(Opcode::Storb.code(), 0o13);
        assert_eq!(Opcode::Recv.code(), 0o14);
        assert_eq!(Opcode::Fetch.code(), 0o15);
        assert_eq!(Opcode::Fchb.code(), 0o17);
        assert_eq!(Opcode::Plus.code(), 0o30);
        assert_eq!(Opcode::Minus.code(), 0o31);
        assert_eq!(Opcode::Ge.code(), 0o41);
        assert_eq!(Opcode::Bne.code(), 0o62);
        assert_eq!(Opcode::Beq.code(), 0o66);
        assert_eq!(Opcode::Ftrap.code(), 0o70);
        assert_eq!(Opcode::Trap.code(), 0o71);
        assert_eq!(Opcode::Fret.code(), 0o74);
        assert_eq!(Opcode::Rett.code(), 0o75);
    }

    #[test]
    fn src_mode_encode_decode_round_trip() {
        let modes = [
            SrcMode::Window(0),
            SrcMode::Window(15),
            SrcMode::Global(16),
            SrcMode::Global(31),
            SrcMode::Imm(-15),
            SrcMode::Imm(0),
            SrcMode::Imm(15),
            SrcMode::ImmWord(0),
        ];
        for m in modes {
            let enc = m.encode().unwrap();
            assert_eq!(SrcMode::decode(enc), m, "mode {m:?}");
        }
    }

    #[test]
    fn dup_encode_decode_round_trips_for_all_field_values() {
        // dup1's second offset is a don't-care for execution but is
        // preserved in the word; decode must return exactly what encode
        // was given for every combination (regression seed:
        // Dup { two: false, off1: 0, off2: 1, cont: false }).
        for two in [false, true] {
            for (off1, off2) in [(0, 0), (0, 1), (30, 0), (7, 255), (255, 255)] {
                for cont in [false, true] {
                    let i = Instruction::Dup { two, off1, off2, cont };
                    let words = i.encode().unwrap();
                    let (d, used) = Instruction::decode(&words).unwrap();
                    assert_eq!(used, 1);
                    assert_eq!(d, i);
                }
            }
        }
    }

    #[test]
    fn src_mode_rejects_out_of_range() {
        assert!(SrcMode::Window(16).encode().is_err());
        assert!(SrcMode::Global(5).encode().is_err());
        assert!(SrcMode::Imm(16).encode().is_err());
        assert!(SrcMode::Imm(-16).encode().is_err());
    }

    #[test]
    fn basic_instruction_round_trip() {
        let i = Instruction::Basic {
            op: Opcode::Plus,
            src1: SrcMode::Window(0),
            src2: SrcMode::Window(1),
            dst1: 0,
            dst2: 2,
            qp_inc: 2,
            cont: true,
        };
        let words = i.encode().unwrap();
        assert_eq!(words.len(), 1);
        let (decoded, used) = Instruction::decode(&words).unwrap();
        assert_eq!(used, 1);
        assert_eq!(decoded, i);
    }

    #[test]
    fn immediate_word_round_trip() {
        let i = Instruction::Basic {
            op: Opcode::Fetch,
            src1: SrcMode::ImmWord(0x1234_5678),
            src2: SrcMode::Imm(0),
            dst1: 0,
            dst2: REG_DUMMY,
            qp_inc: 0,
            cont: false,
        };
        let words = i.encode().unwrap();
        assert_eq!(words.len(), 2);
        let (decoded, used) = Instruction::decode(&words).unwrap();
        assert_eq!(used, 2);
        assert_eq!(decoded, i);
    }

    #[test]
    fn two_immediate_words_round_trip() {
        let i = Instruction::Basic {
            op: Opcode::Store,
            src1: SrcMode::ImmWord(-7),
            src2: SrcMode::ImmWord(42),
            dst1: REG_DUMMY,
            dst2: REG_DUMMY,
            qp_inc: 0,
            cont: false,
        };
        let words = i.encode().unwrap();
        assert_eq!(words.len(), 3);
        let (decoded, used) = Instruction::decode(&words).unwrap();
        assert_eq!(used, 3);
        assert_eq!(decoded, i);
    }

    #[test]
    fn dup_round_trip() {
        let i = Instruction::Dup { two: true, off1: 0, off2: 255, cont: false };
        let words = i.encode().unwrap();
        let (decoded, used) = Instruction::decode(&words).unwrap();
        assert_eq!(used, 1);
        assert_eq!(decoded, i);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(Opcode::Plus.alu(2, 3), Some(5));
        assert_eq!(Opcode::Minus.alu(2, 3), Some(-1));
        assert_eq!(Opcode::Mul.alu(-4, 3), Some(-12));
        assert_eq!(Opcode::Div.alu(7, 2), Some(3));
        assert_eq!(Opcode::Div.alu(7, 0), Some(0));
        assert_eq!(Opcode::Lshift.alu(1, 4), Some(16));
        assert_eq!(Opcode::Rshift.alu(-16, 2), Some(-4), "arithmetic shift sign-extends");
        assert_eq!(Opcode::Xor.alu(0b1010, 0b0110), Some(0b1100));
        // Boolean encoding: all ones true, all zeroes false.
        assert_eq!(Opcode::Lt.alu(1, 2), Some(-1));
        assert_eq!(Opcode::Lt.alu(2, 1), Some(0));
        assert_eq!(Opcode::Lo.alu(-1, 1), Some(0), "unsigned: 0xFFFFFFFF is large");
        assert_eq!(Opcode::Hi.alu(-1, 1), Some(-1));
        assert_eq!(Opcode::Fetch.alu(0, 0), None, "memory ops are not pure ALU");
    }

    #[test]
    fn thesis_idioms() {
        // xor r, #-1 = bitwise complement; minus #0, r = negate.
        assert_eq!(Opcode::Xor.alu(0b1010, -1), Some(!0b1010));
        assert_eq!(Opcode::Minus.alu(0, 5), Some(-5));
        // plus r, #0 = move.
        assert_eq!(Opcode::Plus.alu(17, 0), Some(17));
    }

    #[test]
    fn display_matches_thesis_syntax() {
        let i = Instruction::Basic {
            op: Opcode::Plus,
            src1: SrcMode::Window(0),
            src2: SrcMode::Window(1),
            dst1: 0,
            dst2: 2,
            qp_inc: 2,
            cont: true,
        };
        assert_eq!(i.to_string(), "plus+2 r0,r1 :r0,r2 >");
        let d = Instruction::Dup { two: false, off1: 30, off2: 0, cont: false };
        assert_eq!(d.to_string(), "dup1 :r30");
    }

    #[test]
    fn size_in_words() {
        let i = Instruction::basic(Opcode::Plus, SrcMode::ImmWord(1), SrcMode::ImmWord(2));
        assert_eq!(i.size_words(), 3);
        let d = Instruction::Dup { two: false, off1: 0, off2: 0, cont: false };
        assert_eq!(d.size_words(), 1);
    }
}
