//! Pre-decoded instruction form shared by the interpreter and the
//! translated backend (`qm-sim::xlate`).
//!
//! [`DecodedInstr`] is the product of running [`Instruction::decode`]
//! once and resolving everything that never changes for a given code
//! word: the operand addressing modes (small and word immediates fold
//! into one [`XSrc::Imm`]), the destination registers, the queue
//! increment, the encoded length, and — the direct-threading part — a
//! per-instruction-class *exec function pointer*. Executing a decoded
//! instruction is one indirect call with no opcode dispatch.
//!
//! Both backends execute through [`Pe::step_decoded`]: the interpreter
//! translates on every step (`fetch → translate → exec`), the
//! translated backend caches the [`DecodedInstr`] per code address and
//! skips straight to `exec`. Because the exec bodies are the *same
//! functions*, cycle charging, statistics, fault draws and blocking
//! behaviour cannot drift between the two.

use crate::isa::{Instruction, Opcode, SrcMode, REG_DUMMY};
use crate::mem::DataPort;
use crate::pe::{BlockReason, Pe, RecvOutcome, SendOutcome, Services, StepResult};
use crate::{Result, UWord, Word};

/// A resolved source operand. [`SrcMode::Imm`] and [`SrcMode::ImmWord`]
/// collapse to [`XSrc::Imm`]: after decode they are indistinguishable
/// (the word-count difference is charged from the decoded instruction's
/// stored word count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XSrc {
    /// Window register `r0…r15` (hit/miss resolved at read time).
    Window(u8),
    /// Global register `r16…r31`.
    Global(u8),
    /// Immediate value, already widened.
    Imm(Word),
}

type ExecFn = fn(&DecodedInstr, &mut Pe, &mut dyn DataPort, &mut dyn Services) -> StepResult;

/// One instruction, decoded once and ready for direct-threaded
/// execution. See the module docs for how the two backends share it.
#[derive(Debug, Clone, Copy)]
pub struct DecodedInstr {
    exec: ExecFn,
    op: Opcode,
    src1: XSrc,
    src2: XSrc,
    dst1: u8,
    dst2: u8,
    qp_inc: u8,
    /// Encoded length in words (1 + immediate words).
    words: u8,
    /// `dup` queue offsets (`off2` used only when `two`).
    off1: u8,
    off2: u8,
    two: bool,
}

impl DecodedInstr {
    /// Decode and pre-resolve the instruction starting at `words[0]`.
    /// Wraps [`Instruction::decode`], so it accepts and rejects exactly
    /// the same encodings with the same errors.
    ///
    /// # Errors
    ///
    /// Unknown opcode or missing immediate words.
    #[inline]
    pub fn translate(words: &[u32]) -> Result<DecodedInstr> {
        let (instr, used) = Instruction::decode(words)?;
        Ok(Self::from_instr(&instr, used))
    }

    /// Pre-resolve an already-decoded instruction. `used` is the
    /// encoded length in words as reported by [`Instruction::decode`].
    #[must_use]
    pub fn from_instr(instr: &Instruction, used: usize) -> DecodedInstr {
        #[allow(clippy::cast_possible_truncation)]
        let words = used as u8;
        match *instr {
            Instruction::Dup { two, off1, off2, .. } => DecodedInstr {
                exec: exec_dup,
                op: if two { Opcode::Dup2 } else { Opcode::Dup1 },
                src1: XSrc::Imm(0),
                src2: XSrc::Imm(0),
                dst1: REG_DUMMY,
                dst2: REG_DUMMY,
                qp_inc: 0,
                words,
                off1,
                off2,
                two,
            },
            Instruction::Basic { op, src1, src2, dst1, dst2, qp_inc, .. } => {
                let exec: ExecFn = match op {
                    Opcode::Fetch | Opcode::Fchb => exec_mem_read,
                    Opcode::Store | Opcode::Storb => exec_mem_write,
                    Opcode::Send => exec_send,
                    Opcode::Recv => exec_recv,
                    Opcode::Bne | Opcode::Beq => exec_branch,
                    Opcode::Trap | Opcode::Ftrap => exec_trap,
                    Opcode::Fret | Opcode::Rett => exec_ret,
                    // Everything else is a pure ALU/compare op.
                    _ => exec_alu,
                };
                DecodedInstr {
                    exec,
                    op,
                    src1: xsrc(src1),
                    src2: xsrc(src2),
                    dst1,
                    dst2,
                    qp_inc,
                    words,
                    off1: 0,
                    off2: 0,
                    two: false,
                }
            }
        }
    }

    /// The operation.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        self.op
    }

    /// Encoded length in words (1 + immediate words).
    #[must_use]
    pub fn size_words(&self) -> u8 {
        self.words
    }

    /// True when execution always returns [`StepResult::Continue`] and
    /// never touches the [`Services`] implementation: `dup`, ALU and
    /// compare ops, memory accesses and branches. Channel ops can
    /// block, traps and returns hand control to the kernel — those are
    /// the scheduling points a batching run loop must surface.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        !matches!(
            self.op,
            Opcode::Send
                | Opcode::Recv
                | Opcode::Trap
                | Opcode::Ftrap
                | Opcode::Fret
                | Opcode::Rett
        )
    }

    /// True when executing this instruction from `pe`'s *current*
    /// register state can only touch `pe`'s private local plane — never
    /// global memory, channels or the kernel. Window-miss fills read the
    /// queue page at [`crate::regs::RegisterFile::vreg_to_addr`] and
    /// `dup` writes the slots at
    /// [`crate::regs::RegisterFile::queue_slot_addr`]; both are local
    /// unless the program repointed its queue pointer at global space,
    /// so each address is checked against [`crate::mem::is_local`]
    /// before the claim is made. `fetch`/`store` are conservatively
    /// non-local (their target address is a computed operand value).
    ///
    /// Local-only steps commute with every other PE's steps — the same
    /// observation behind the sharded frontier (`qm-sim::shard`) — which
    /// is what lets a batching run loop retire them ahead of the global
    /// cycle order (`qm-sim::xlate`).
    #[must_use]
    pub fn is_local_only(&self, pe: &Pe) -> bool {
        use crate::mem::is_local;
        let fill_local = |src: XSrc| match src {
            XSrc::Window(n) => {
                pe.regs.read_window(n).is_some() || is_local(pe.regs.vreg_to_addr(n))
            }
            XSrc::Global(_) | XSrc::Imm(_) => true,
        };
        match self.op {
            Opcode::Dup1 | Opcode::Dup2 => {
                is_local(pe.regs.queue_slot_addr(u32::from(self.off1)))
                    && (!self.two || is_local(pe.regs.queue_slot_addr(u32::from(self.off2))))
            }
            Opcode::Fetch
            | Opcode::Fchb
            | Opcode::Store
            | Opcode::Storb
            | Opcode::Send
            | Opcode::Recv
            | Opcode::Trap
            | Opcode::Ftrap
            | Opcode::Fret
            | Opcode::Rett => false,
            // ALU/compare/branch: memory is reached only through
            // window-miss fills of the two source operands.
            _ => fill_local(self.src1) && fill_local(self.src2),
        }
    }

    /// Run the exec function (the prologue cycle charge lives in
    /// [`Pe::step_decoded`], which is the only caller).
    #[inline]
    pub(crate) fn exec(
        &self,
        pe: &mut Pe,
        port: &mut dyn DataPort,
        svc: &mut dyn Services,
    ) -> StepResult {
        (self.exec)(self, pe, port, svc)
    }
}

#[inline]
fn xsrc(m: SrcMode) -> XSrc {
    match m {
        SrcMode::Window(n) => XSrc::Window(n),
        SrcMode::Global(n) => XSrc::Global(n),
        SrcMode::Imm(v) => XSrc::Imm(Word::from(v)),
        SrcMode::ImmWord(v) => XSrc::Imm(v),
    }
}

/// Read a resolved operand with the interpreter's exact charging:
/// window hits and misses count and cost identically to
/// `Pe::read_src`.
#[inline]
fn read_xsrc(pe: &mut Pe, src: XSrc, port: &mut dyn DataPort) -> Word {
    match src {
        XSrc::Window(n) => {
            if let Some(v) = pe.regs.read_window(n) {
                pe.stats.window_hits += 1;
                v
            } else {
                let addr = pe.regs.vreg_to_addr(n);
                let (v, extra) = port.read_word(pe.id, addr);
                pe.cycles += pe.model.window_miss + extra;
                pe.stats.window_misses += 1;
                pe.regs.fill_window(n, v);
                v
            }
        }
        XSrc::Global(n) => pe.regs.read_global(n),
        XSrc::Imm(v) => v,
    }
}

#[inline]
fn next_pc(pe: &Pe, d: &DecodedInstr) -> UWord {
    pe.regs.pc().wrapping_add(4 * UWord::from(d.words))
}

fn exec_dup(
    d: &DecodedInstr,
    pe: &mut Pe,
    port: &mut dyn DataPort,
    _: &mut dyn Services,
) -> StepResult {
    // dup writes the memory-resident queue page directly, even for
    // offsets < 16 (thesis §5.3.3).
    let next = next_pc(pe, d);
    let v = pe.last_result();
    let addr1 = pe.regs.queue_slot_addr(u32::from(d.off1));
    let extra = port.write_word(pe.id, addr1, v);
    pe.cycles += pe.model.mem_extra + extra;
    pe.stats.mem_writes += 1;
    if d.two {
        let addr2 = pe.regs.queue_slot_addr(u32::from(d.off2));
        let extra = port.write_word(pe.id, addr2, v);
        pe.cycles += pe.model.mem_extra + extra;
        pe.stats.mem_writes += 1;
    }
    pe.regs.set_pc(next);
    pe.stats.instructions += 1;
    StepResult::Continue
}

/// The shared non-early-return epilogue of a basic instruction:
/// advance the queue, set the PC, deposit the result (if any) and
/// retire.
#[inline]
fn finish(d: &DecodedInstr, pe: &mut Pe, pc_next: UWord, value: Option<Word>) -> StepResult {
    pe.regs.advance_qp(d.qp_inc);
    pe.regs.set_pc(pc_next);
    if let Some(v) = value {
        pe.write_dst(d.dst1, v);
        pe.write_dst(d.dst2, v);
        pe.set_last_result(v);
    }
    pe.stats.instructions += 1;
    StepResult::Continue
}

fn exec_alu(
    d: &DecodedInstr,
    pe: &mut Pe,
    port: &mut dyn DataPort,
    _: &mut dyn Services,
) -> StepResult {
    let next = next_pc(pe, d);
    let a = read_xsrc(pe, d.src1, port);
    let b = read_xsrc(pe, d.src2, port);
    let v = d.op.alu(a, b).expect("translation routes only pure ALU ops here");
    finish(d, pe, next, Some(v))
}

fn exec_mem_read(
    d: &DecodedInstr,
    pe: &mut Pe,
    port: &mut dyn DataPort,
    _: &mut dyn Services,
) -> StepResult {
    let next = next_pc(pe, d);
    let a = read_xsrc(pe, d.src1, port);
    let _b = read_xsrc(pe, d.src2, port);
    #[allow(clippy::cast_sign_loss)]
    let (v, extra) = if d.op == Opcode::Fetch {
        port.read_word(pe.id, a as UWord)
    } else {
        port.read_byte(pe.id, a as UWord)
    };
    pe.cycles += pe.model.mem_extra + extra;
    pe.stats.mem_reads += 1;
    finish(d, pe, next, Some(v))
}

fn exec_mem_write(
    d: &DecodedInstr,
    pe: &mut Pe,
    port: &mut dyn DataPort,
    _: &mut dyn Services,
) -> StepResult {
    let next = next_pc(pe, d);
    let a = read_xsrc(pe, d.src1, port);
    let b = read_xsrc(pe, d.src2, port);
    #[allow(clippy::cast_sign_loss)]
    let extra = if d.op == Opcode::Store {
        port.write_word(pe.id, a as UWord, b)
    } else {
        port.write_byte(pe.id, a as UWord, b)
    };
    pe.cycles += pe.model.mem_extra + extra;
    pe.stats.mem_writes += 1;
    finish(d, pe, next, None)
}

fn exec_send(
    d: &DecodedInstr,
    pe: &mut Pe,
    port: &mut dyn DataPort,
    svc: &mut dyn Services,
) -> StepResult {
    let next = next_pc(pe, d);
    let a = read_xsrc(pe, d.src1, port);
    let b = read_xsrc(pe, d.src2, port);
    match svc.send(pe.id, a, b) {
        SendOutcome::Done { cycles } => {
            pe.cycles += pe.model.channel + cycles;
            pe.stats.sends += 1;
            finish(d, pe, next, None)
        }
        SendOutcome::Block => StepResult::Blocked(BlockReason::SendOn(a)),
    }
}

fn exec_recv(
    d: &DecodedInstr,
    pe: &mut Pe,
    port: &mut dyn DataPort,
    svc: &mut dyn Services,
) -> StepResult {
    let next = next_pc(pe, d);
    let a = read_xsrc(pe, d.src1, port);
    let _b = read_xsrc(pe, d.src2, port);
    match svc.recv(pe.id, a) {
        RecvOutcome::Done { value, cycles } => {
            pe.cycles += pe.model.channel + cycles;
            pe.stats.recvs += 1;
            finish(d, pe, next, Some(value))
        }
        RecvOutcome::Block => StepResult::Blocked(BlockReason::RecvOn(a)),
    }
}

fn exec_branch(
    d: &DecodedInstr,
    pe: &mut Pe,
    port: &mut dyn DataPort,
    _: &mut dyn Services,
) -> StepResult {
    let next = next_pc(pe, d);
    let a = read_xsrc(pe, d.src1, port);
    let b = read_xsrc(pe, d.src2, port);
    let mut pc_next = next;
    let taken = (a != 0) == (d.op == Opcode::Bne);
    if taken {
        #[allow(clippy::cast_sign_loss)]
        {
            pc_next = next.wrapping_add(b as UWord);
        }
        pe.cycles += pe.model.branch_taken;
    }
    finish(d, pe, pc_next, None)
}

fn exec_trap(
    d: &DecodedInstr,
    pe: &mut Pe,
    port: &mut dyn DataPort,
    _: &mut dyn Services,
) -> StepResult {
    let next = next_pc(pe, d);
    let a = read_xsrc(pe, d.src1, port);
    let b = read_xsrc(pe, d.src2, port);
    pe.cycles += pe.model.trap;
    pe.stats.traps += 1;
    pe.stats.instructions += 1;
    pe.regs.advance_qp(d.qp_inc);
    pe.regs.set_pc(next);
    StepResult::Trap { entry: a, arg: b, dst1: d.dst1, dst2: d.dst2, fast: d.op == Opcode::Ftrap }
}

fn exec_ret(
    d: &DecodedInstr,
    pe: &mut Pe,
    port: &mut dyn DataPort,
    _: &mut dyn Services,
) -> StepResult {
    let next = next_pc(pe, d);
    let _a = read_xsrc(pe, d.src1, port);
    let _b = read_xsrc(pe, d.src2, port);
    pe.stats.instructions += 1;
    pe.regs.set_pc(next);
    StepResult::Return { fast: d.op == Opcode::Fret }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::FlatMemory;
    use crate::pe::BufferedChannels;

    const QP0: UWord = 0x8000_0400;

    /// A broad instruction pool covering every exec class and operand
    /// mode; each is run through `Pe::step` (which itself goes through
    /// the decoded path) and through an explicitly pre-translated
    /// `step_decoded`, and the complete PE state must match.
    fn pool() -> Vec<Instruction> {
        use Opcode::*;
        let b = |op, src1, src2, dst1, dst2, qp_inc| Instruction::Basic {
            op,
            src1,
            src2,
            dst1,
            dst2,
            qp_inc,
            cont: false,
        };
        let mut v = vec![
            Instruction::Dup { two: false, off1: 30, off2: 0, cont: false },
            Instruction::Dup { two: true, off1: 3, off2: 250, cont: false },
            b(Fetch, SrcMode::ImmWord(0x0010_0100), SrcMode::Imm(0), 0, REG_DUMMY, 0),
            b(Fchb, SrcMode::ImmWord(0x0010_0101), SrcMode::Imm(0), 1, REG_DUMMY, 0),
            b(Store, SrcMode::ImmWord(0x0010_0200), SrcMode::Imm(7), REG_DUMMY, REG_DUMMY, 0),
            b(Storb, SrcMode::ImmWord(0x0010_0201), SrcMode::Imm(9), REG_DUMMY, REG_DUMMY, 0),
            b(Send, SrcMode::Imm(5), SrcMode::Imm(13), REG_DUMMY, REG_DUMMY, 0),
            b(Recv, SrcMode::Imm(5), SrcMode::Imm(0), 2, REG_DUMMY, 0),
            b(Recv, SrcMode::Imm(6), SrcMode::Imm(0), 2, REG_DUMMY, 0), // blocks
            b(Bne, SrcMode::Imm(-1), SrcMode::Imm(8), REG_DUMMY, REG_DUMMY, 0),
            b(Beq, SrcMode::Imm(-1), SrcMode::Imm(8), REG_DUMMY, REG_DUMMY, 0),
            b(Trap, SrcMode::Imm(3), SrcMode::Imm(7), 1, 2, 1),
            b(Ftrap, SrcMode::Imm(1), SrcMode::Imm(0), REG_DUMMY, REG_DUMMY, 0),
            b(Fret, SrcMode::Imm(0), SrcMode::Imm(0), REG_DUMMY, REG_DUMMY, 0),
            b(Rett, SrcMode::Imm(0), SrcMode::Imm(0), REG_DUMMY, REG_DUMMY, 0),
            b(Plus, SrcMode::Window(0), SrcMode::Window(1), 0, 2, 2), // misses then hits
            b(Plus, SrcMode::ImmWord(1000), SrcMode::Imm(1), 17, REG_DUMMY, 0),
        ];
        for &(op, _) in &Opcode::ALL {
            if op.alu(1, 2).is_some() {
                v.push(b(op, SrcMode::Imm(11), SrcMode::Imm(3), 4, REG_DUMMY, 0));
                v.push(b(op, SrcMode::Global(17), SrcMode::Imm(-2), 18, 5, 0));
            }
        }
        v
    }

    fn fresh(instr: &Instruction) -> (Pe, FlatMemory, BufferedChannels) {
        let mut mem = FlatMemory::new();
        mem.load_words(0, &instr.encode().unwrap());
        mem.poke(0x0010_0100, 0x1234_5678);
        mem.poke(QP0, 41);
        mem.poke(QP0 + 4, 43);
        let mut pe = Pe::new(0);
        pe.reset(0, QP0);
        pe.regs.write_global(17, -5);
        pe.set_last_result(77);
        let mut chans = BufferedChannels::new();
        chans.push(5, 42);
        (pe, mem, chans)
    }

    #[test]
    fn step_and_step_decoded_agree_on_every_class() {
        for instr in pool() {
            let (mut pe_a, mut mem_a, mut ch_a) = fresh(&instr);
            let (mut pe_b, mut mem_b, mut ch_b) = fresh(&instr);

            let ra = pe_a.step(&mut mem_a, &mut ch_a);

            let words = instr.encode().unwrap();
            let mut padded = [0u32; 3];
            padded[..words.len()].copy_from_slice(&words);
            let d = DecodedInstr::translate(&padded).unwrap();
            let rb = pe_b.step_decoded(&d, &mut mem_b, &mut ch_b);

            assert_eq!(ra, rb, "{instr}");
            assert_eq!(pe_a.regs, pe_b.regs, "{instr}");
            assert_eq!(pe_a.cycles, pe_b.cycles, "{instr}");
            assert_eq!(pe_a.stats, pe_b.stats, "{instr}");
            assert_eq!(pe_a.last_result(), pe_b.last_result(), "{instr}");
            for addr in [QP0, QP0 + 4, QP0 + 30 * 4, 0x0010_0200, 0x0010_0201] {
                assert_eq!(mem_a.peek(addr), mem_b.peek(addr), "{instr} @{addr:#x}");
            }
        }
    }

    #[test]
    fn translate_rejects_exactly_what_decode_rejects() {
        let bad = [0x3Fu32 << 26, 0, 0]; // unknown opcode 0o77
        assert_eq!(
            DecodedInstr::translate(&bad).unwrap_err().to_string(),
            Instruction::decode(&bad).unwrap_err().to_string(),
        );
        let truncated = [Instruction::basic(Opcode::Plus, SrcMode::ImmWord(1), SrcMode::Imm(0))
            .encode()
            .unwrap()[0]];
        assert_eq!(
            DecodedInstr::translate(&truncated).unwrap_err().to_string(),
            Instruction::decode(&truncated).unwrap_err().to_string(),
        );
    }

    #[test]
    fn sequential_classification() {
        let seq = [Opcode::Plus, Opcode::Fetch, Opcode::Store, Opcode::Bne, Opcode::Dup1];
        let non =
            [Opcode::Send, Opcode::Recv, Opcode::Trap, Opcode::Ftrap, Opcode::Fret, Opcode::Rett];
        for instr in pool() {
            let d = DecodedInstr::from_instr(&instr, instr.size_words());
            if seq.contains(&d.opcode()) {
                assert!(d.is_sequential(), "{instr}");
            }
            if non.contains(&d.opcode()) {
                assert!(!d.is_sequential(), "{instr}");
            }
        }
    }

    #[test]
    fn size_words_matches_encoding() {
        for instr in pool() {
            let d = DecodedInstr::from_instr(&instr, instr.size_words());
            assert_eq!(usize::from(d.size_words()), instr.size_words(), "{instr}");
        }
    }
}
