//! Assembler and disassembler for the queue machine assembly language
//! (thesis §5.3.4).
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! [label:] opcode[+n|++…] [src1[,src2]] [:dst1[,dst2]] [>]   ; comment
//! ```
//!
//! * QP increment: `plus+2 …` or (thesis style) `plus++ …`.
//! * Sources: `rN` registers (or the names `dummy`, `nar`, `pom`, `qp`,
//!   `pc`), `#n` immediates (decimal or `0x…`), `#label` for the absolute
//!   address of a label, `@label` for a PC-relative byte offset (branches).
//! * Destinations: `rN` (for `dup`, `N` may reach 255).
//! * `>` sets the continue flag.
//! * Directives: `.word n|label`, `.space n` (n zero words).
//!
//! ```
//! let obj = qm_isa::asm::assemble("loop: plus+1 r0,#1 :r0\n bne r0,@loop").unwrap();
//! assert_eq!(obj.words().len(), 3); // bne needs an immediate offset word
//! ```

use std::collections::HashMap;

use crate::isa::{Instruction, Opcode, SrcMode, REG_DUMMY};
use crate::{IsaError, Result, UWord, Word};

/// Output of the assembler: raw words plus the symbol table.
///
/// Freshly assembled objects also carry *verification metadata* — the
/// byte address of every instruction start and a map from instruction
/// addresses back to source lines — consumed by static analyses
/// (`qm-verify`) to walk the code without guessing where data words end
/// and instructions begin, and to report diagnostics against the
/// original source. Objects rebuilt from raw parts (snapshots) have no
/// metadata; see [`Object::has_verify_meta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    words: Vec<u32>,
    symbols: HashMap<String, UWord>,
    base: UWord,
    /// Byte addresses of instruction starts, ascending (excludes data
    /// words, `.space` fill and trailing immediate words).
    instr_addrs: Vec<UWord>,
    /// `(instruction address, 1-based source line)` pairs, ascending.
    line_map: Vec<(UWord, usize)>,
}

impl Object {
    /// Reassemble an object from its parts (words, symbol table, base
    /// address). The inverse of the accessors below; used by external
    /// serializers (e.g. simulator snapshots) to round-trip an object
    /// without re-running the assembler. Such objects carry no
    /// verification metadata.
    #[must_use]
    pub fn from_parts(words: Vec<u32>, symbols: HashMap<String, UWord>, base: UWord) -> Self {
        Object { words, symbols, base, instr_addrs: Vec::new(), line_map: Vec::new() }
    }

    /// True when the assembler recorded verification metadata
    /// ([`instr_addrs`](Self::instr_addrs) / [`line_for`](Self::line_for)).
    /// False for objects rebuilt by [`Object::from_parts`].
    #[must_use]
    pub fn has_verify_meta(&self) -> bool {
        !self.instr_addrs.is_empty()
    }

    /// Byte addresses of instruction starts, ascending. Empty when the
    /// object carries no verification metadata.
    #[must_use]
    pub fn instr_addrs(&self) -> &[UWord] {
        &self.instr_addrs
    }

    /// 1-based source line of the instruction at `addr`, when known.
    #[must_use]
    pub fn line_for(&self, addr: UWord) -> Option<usize> {
        self.line_map.binary_search_by_key(&addr, |&(a, _)| a).ok().map(|i| self.line_map[i].1)
    }

    /// The encoded instruction/data words.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Byte address of a label.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<UWord> {
        self.symbols.get(name).copied()
    }

    /// All defined symbols.
    #[must_use]
    pub fn symbols(&self) -> &HashMap<String, UWord> {
        &self.symbols
    }

    /// Base (load) address of the object.
    #[must_use]
    pub fn base(&self) -> UWord {
        self.base
    }

    /// Size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> UWord {
        #[allow(clippy::cast_possible_truncation)]
        {
            (self.words.len() as UWord) * 4
        }
    }
}

#[derive(Debug, Clone)]
enum SrcSpec {
    Mode(SrcMode),
    AbsLabel(String),
    RelLabel(String),
}

#[derive(Debug, Clone)]
enum Item {
    Instr { line: usize, op: Opcode, srcs: Vec<SrcSpec>, dsts: Vec<u8>, qp_inc: u8, cont: bool },
    Word(WordSpec),
    Space(usize),
}

#[derive(Debug, Clone)]
enum WordSpec {
    Value(Word),
    Label(String),
}

/// Assemble a source text at base address [`crate::mem::CODE_BASE`].
///
/// # Errors
///
/// [`IsaError::Asm`] with a line number for any syntax or range problem.
pub fn assemble(src: &str) -> Result<Object> {
    assemble_at(src, crate::mem::CODE_BASE)
}

/// Assemble at an explicit base address.
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_at(src: &str, base: UWord) -> Result<Object> {
    let err = |line: usize, msg: String| IsaError::Asm { line, msg };

    // Pass 1: parse lines into items and lay out labels.
    let mut items: Vec<Item> = Vec::new();
    let mut symbols: HashMap<String, UWord> = HashMap::new();
    let mut pc = base;
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(pos) = text.find(';') {
            text = &text[..pos];
        }
        let mut text = text.trim();
        // Labels (possibly several) before the statement.
        while let Some(colon) = text.find(':') {
            let (head, rest) = text.split_at(colon);
            let name = head;
            // A label's colon is adjacent to the identifier; an operand
            // colon (`dup1 :r30`) is preceded by whitespace.
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                break;
            }
            if symbols.insert(name.to_string(), pc).is_some() {
                return Err(err(line, format!("duplicate label {name}")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let item = parse_statement(text, line)?;
        pc += 4 * item_size(&item) as UWord;
        items.push(item);
    }

    // Pass 2: encode with resolved labels.
    let mut words: Vec<u32> = Vec::new();
    let mut instr_addrs: Vec<UWord> = Vec::new();
    let mut line_map: Vec<(UWord, usize)> = Vec::new();
    let lookup = |name: &str, line: usize| -> Result<UWord> {
        symbols.get(name).copied().ok_or_else(|| err(line, format!("undefined label {name}")))
    };
    let mut addr = base;
    for item in &items {
        let size = item_size(item) as UWord;
        match item {
            Item::Word(spec) => {
                let v = match spec {
                    WordSpec::Value(v) => *v,
                    #[allow(clippy::cast_possible_wrap)]
                    WordSpec::Label(name) => lookup(name, 0)? as Word,
                };
                #[allow(clippy::cast_sign_loss)]
                words.push(v as u32);
            }
            Item::Space(n) => words.extend(std::iter::repeat_n(0u32, *n)),
            Item::Instr { line, op, srcs, dsts, qp_inc, cont } => {
                instr_addrs.push(addr);
                line_map.push((addr, *line));
                let next_pc = addr + 4 * size;
                let resolve = |spec: &SrcSpec| -> Result<SrcMode> {
                    Ok(match spec {
                        SrcSpec::Mode(m) => *m,
                        #[allow(clippy::cast_possible_wrap)]
                        SrcSpec::AbsLabel(name) => SrcMode::ImmWord(lookup(name, *line)? as Word),
                        #[allow(clippy::cast_possible_wrap)]
                        SrcSpec::RelLabel(name) => {
                            let target = lookup(name, *line)?;
                            SrcMode::ImmWord(target.wrapping_sub(next_pc) as Word)
                        }
                    })
                };
                let instr = if op.is_dup() {
                    let two = *op == Opcode::Dup2;
                    // dup2 stores at both offsets; dup1 stores at the first
                    // but may carry a (don't-care) second offset in the
                    // encoding, so accept one or two destinations.
                    let ok = if two { dsts.len() == 2 } else { (1..=2).contains(&dsts.len()) };
                    if !ok || !srcs.is_empty() {
                        let need = if two { "2" } else { "1 or 2" };
                        return Err(err(
                            *line,
                            format!("{op} takes no sources and {need} destination(s)"),
                        ));
                    }
                    Instruction::Dup {
                        two,
                        off1: dsts[0],
                        off2: dsts.get(1).copied().unwrap_or(0),
                        cont: *cont,
                    }
                } else {
                    if srcs.len() > 2 {
                        return Err(err(*line, "at most two sources".into()));
                    }
                    if dsts.len() > 2 {
                        return Err(err(*line, "at most two destinations".into()));
                    }
                    if dsts.iter().any(|&d| d > 31) {
                        return Err(err(*line, "destination register > r31".into()));
                    }
                    let src1 = srcs.first().map_or(Ok(SrcMode::Imm(0)), resolve)?;
                    let src2 = srcs.get(1).map_or(Ok(SrcMode::Imm(0)), resolve)?;
                    Instruction::Basic {
                        op: *op,
                        src1,
                        src2,
                        dst1: dsts.first().copied().unwrap_or(REG_DUMMY),
                        dst2: dsts.get(1).copied().unwrap_or(REG_DUMMY),
                        qp_inc: *qp_inc,
                        cont: *cont,
                    }
                };
                let enc = instr.encode().map_err(|e| err(*line, e.to_string()))?;
                debug_assert_eq!(enc.len() as UWord, size, "size estimate must match");
                words.extend(enc);
            }
        }
        addr += 4 * size;
    }
    Ok(Object { words, symbols, base, instr_addrs, line_map })
}

fn item_size(item: &Item) -> usize {
    match item {
        Item::Word(_) => 1,
        Item::Space(n) => *n,
        Item::Instr { op, srcs, .. } => {
            if op.is_dup() {
                1
            } else {
                1 + srcs
                    .iter()
                    .filter(|s| {
                        matches!(
                            s,
                            SrcSpec::AbsLabel(_)
                                | SrcSpec::RelLabel(_)
                                | SrcSpec::Mode(SrcMode::ImmWord(_))
                        )
                    })
                    .count()
            }
        }
    }
}

fn parse_statement(text: &str, line: usize) -> Result<Item> {
    let err = |msg: String| IsaError::Asm { line, msg };
    if let Some(rest) = text.strip_prefix(".word") {
        let arg = rest.trim();
        return if let Ok(v) = parse_int(arg) {
            Ok(Item::Word(WordSpec::Value(v)))
        } else if arg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !arg.is_empty() {
            Ok(Item::Word(WordSpec::Label(arg.to_string())))
        } else {
            Err(err(format!("bad .word argument {arg:?}")))
        };
    }
    if let Some(rest) = text.strip_prefix(".space") {
        let n: usize = rest
            .trim()
            .parse()
            .map_err(|_| err(format!("bad .space argument {:?}", rest.trim())))?;
        return Ok(Item::Space(n));
    }

    // Mnemonic with optional +n / ++… suffix.
    let (head, tail) = match text.find(char::is_whitespace) {
        Some(i) => text.split_at(i),
        None => (text, ""),
    };
    let mut cont = false;
    let mut tail = tail.trim();
    if let Some(stripped) = tail.strip_suffix('>') {
        cont = true;
        tail = stripped.trim();
    }
    let (mnemonic, qp_inc) = if let Some(plus) = head.find('+') {
        let (m, suffix) = head.split_at(plus);
        let inc = if suffix.chars().all(|c| c == '+') {
            suffix.len()
        } else {
            suffix[1..].parse::<usize>().map_err(|_| err(format!("bad QP increment {suffix:?}")))?
        };
        (m, inc)
    } else {
        (head, 0)
    };
    if qp_inc > 7 {
        return Err(err(format!("QP increment {qp_inc} > 7")));
    }
    let Some(op) = Opcode::from_mnemonic(mnemonic) else {
        return Err(err(format!("unknown mnemonic {mnemonic:?}")));
    };

    // Operands: sources before ':', destinations after.
    let (src_part, dst_part) = match tail.find(':') {
        Some(i) => (&tail[..i], &tail[i + 1..]),
        None => (tail, ""),
    };
    let mut srcs = Vec::new();
    for tok in src_part.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        srcs.push(parse_src(tok, line)?);
    }
    let mut dsts = Vec::new();
    for tok in dst_part.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        dsts.push(parse_reg(tok, 255).ok_or_else(|| err(format!("bad destination {tok:?}")))?);
    }
    #[allow(clippy::cast_possible_truncation)]
    Ok(Item::Instr { line, op, srcs, dsts, qp_inc: qp_inc as u8, cont })
}

fn parse_src(tok: &str, line: usize) -> Result<SrcSpec> {
    let err = |msg: String| IsaError::Asm { line, msg };
    if let Some(rest) = tok.strip_prefix('#') {
        if let Ok(v) = parse_int(rest) {
            return Ok(SrcSpec::Mode(if (-15..=15).contains(&v) {
                #[allow(clippy::cast_possible_truncation)]
                SrcMode::Imm(v as i8)
            } else {
                SrcMode::ImmWord(v)
            }));
        }
        return Ok(SrcSpec::AbsLabel(rest.to_string()));
    }
    if let Some(rest) = tok.strip_prefix('@') {
        return Ok(SrcSpec::RelLabel(rest.to_string()));
    }
    if let Some(reg) = parse_reg(tok, 31) {
        return Ok(SrcSpec::Mode(if reg < 16 {
            SrcMode::Window(reg)
        } else {
            SrcMode::Global(reg)
        }));
    }
    Err(err(format!("bad source operand {tok:?}")))
}

fn parse_reg(tok: &str, max: u16) -> Option<u8> {
    let named = match tok {
        "dummy" => Some(16u8),
        "nar" => Some(28),
        "pom" => Some(29),
        "qp" => Some(30),
        "pc" => Some(31),
        _ => None,
    };
    if let Some(r) = named {
        return Some(r);
    }
    let rest = tok.strip_prefix('r')?;
    let n: u16 = rest.parse().ok()?;
    (n <= max).then_some(n as u8)
}

fn parse_int(s: &str) -> std::result::Result<Word, std::num::ParseIntError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        #[allow(clippy::cast_possible_wrap)]
        {
            u32::from_str_radix(hex, 16).map(|u| u as Word)?
        }
    } else {
        body.parse::<Word>()?
    };
    Ok(if neg { v.wrapping_neg() } else { v })
}

/// Disassemble a block of instruction words into assembly text, one
/// instruction per line.
#[must_use]
pub fn disassemble(words: &[u32]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < words.len() {
        match Instruction::decode(&words[i..]) {
            Ok((instr, used)) => {
                out.push(instr.to_string());
                i += used;
            }
            Err(_) => {
                out.push(format!(".word {:#010x}", words[i]));
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, Opcode, SrcMode};

    #[test]
    fn thesis_example_assembles() {
        // §5.3.4: plus++ r0,r1 :r0,r2 >  /  dup1 :r30
        let obj = assemble("plus++ r0,r1 :r0,r2 >\ndup1 :r30\n").unwrap();
        assert_eq!(obj.words().len(), 2);
        let (i0, _) = Instruction::decode(obj.words()).unwrap();
        assert_eq!(
            i0,
            Instruction::Basic {
                op: Opcode::Plus,
                src1: SrcMode::Window(0),
                src2: SrcMode::Window(1),
                dst1: 0,
                dst2: 2,
                qp_inc: 2,
                cont: true,
            }
        );
        let (i1, _) = Instruction::decode(&obj.words()[1..]).unwrap();
        assert_eq!(i1, Instruction::Dup { two: false, off1: 30, off2: 0, cont: false });
    }

    #[test]
    fn numeric_qp_suffix() {
        let a = assemble("plus+2 r0,r1 :r0").unwrap();
        let b = assemble("plus++ r0,r1 :r0").unwrap();
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn labels_and_absolute_references() {
        let obj = assemble(
            "start: plus #0,#0\n\
             here:  fetch #data,#0 :r0\n\
             data:  .word 77\n",
        )
        .unwrap();
        assert_eq!(obj.symbol("start"), Some(0));
        assert_eq!(obj.symbol("here"), Some(4));
        // fetch takes 2 words (imm word), so data is at 4 + 8 = 12.
        assert_eq!(obj.symbol("data"), Some(12));
        assert_eq!(obj.words()[2], 12, "imm word holds the label address");
        assert_eq!(obj.words()[3], 77);
    }

    #[test]
    fn relative_branch_offsets() {
        let obj = assemble(
            "loop: plus+1 r0,#1 :r0\n\
                   bne r0,@loop\n",
        )
        .unwrap();
        // bne is at byte 4, two words → next pc = 12; loop = 0 → offset −12.
        #[allow(clippy::cast_possible_wrap)]
        let off = obj.words()[2] as i32;
        assert_eq!(off, -12);
    }

    #[test]
    fn forward_reference_resolves() {
        let obj = assemble(
            "beq r0,@end\n\
             plus #1,#2 :r17\n\
             end: plus #0,#0\n",
        )
        .unwrap();
        #[allow(clippy::cast_possible_wrap)]
        let off = obj.words()[1] as i32;
        // beq: 2 words (0..8); next pc 8; end at 12 → offset 4.
        assert_eq!(off, 4);
    }

    #[test]
    fn named_registers() {
        let obj = assemble("plus qp,#0 :r17\nplus pc,#0 :dummy").unwrap();
        let (i0, _) = Instruction::decode(obj.words()).unwrap();
        match i0 {
            Instruction::Basic { src1: SrcMode::Global(30), dst1: 17, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines() {
        let obj = assemble("; header\n\n  plus #1,#1 ; add\n").unwrap();
        assert_eq!(obj.words().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("plus #1,#1\nbogus r0\n").unwrap_err();
        match e {
            IsaError::Asm { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_label_rejected() {
        assert!(assemble("x: plus #0,#0\nx: plus #0,#0\n").is_err());
    }

    #[test]
    fn undefined_label_rejected() {
        assert!(assemble("bne r0,@nowhere\n").is_err());
    }

    #[test]
    fn hex_and_big_immediates() {
        let obj = assemble("fetch #0x80000400,#0 :r0").unwrap();
        assert_eq!(obj.words().len(), 2);
        assert_eq!(obj.words()[1], 0x8000_0400);
        let obj = assemble("plus #100,#0 :r0").unwrap();
        assert_eq!(obj.words().len(), 2, "100 exceeds small-immediate range");
    }

    #[test]
    fn space_directive() {
        let obj = assemble("a: .space 3\nb: .word 9").unwrap();
        assert_eq!(obj.symbol("b"), Some(12));
        assert_eq!(obj.words(), &[0, 0, 0, 9]);
    }

    #[test]
    fn disassemble_round_trips_text() {
        let src = "plus+2 r0,r1 :r0,r2 >\ndup1 :r30\nminus #0,r0 :r1\n";
        let obj = assemble(src).unwrap();
        let lines = disassemble(obj.words());
        let rejoined = lines.join("\n");
        let obj2 = assemble(&rejoined).unwrap();
        assert_eq!(obj.words(), obj2.words());
    }

    #[test]
    fn dup_validates_operand_counts() {
        assert!(assemble("dup1 r0 :r1").is_err(), "dup takes no sources");
        assert!(assemble("dup2 :r1").is_err(), "dup2 needs two destinations");
        assert!(assemble("dup1 :r200").is_ok(), "dup offsets reach 255");
        assert!(assemble("dup1 :r1,r2,r3").is_err(), "at most two destinations");
    }

    #[test]
    fn verification_metadata_maps_instructions_and_lines() {
        let obj = assemble(
            "start: plus #0,#0\n\
             here:  fetch #data,#0 :r0\n\
             data:  .word 77\n",
        )
        .unwrap();
        assert!(obj.has_verify_meta());
        // plus at 0 (1 word), fetch at 4 (2 words: the imm word at 8 is
        // not an instruction start), data at 12 is data, not code.
        assert_eq!(obj.instr_addrs(), &[0, 4]);
        assert_eq!(obj.line_for(0), Some(1));
        assert_eq!(obj.line_for(4), Some(2));
        assert_eq!(obj.line_for(8), None, "immediate word is not an instruction");
        assert_eq!(obj.line_for(12), None, "data word is not an instruction");
        let bare = Object::from_parts(obj.words().to_vec(), obj.symbols().clone(), obj.base());
        assert!(!bare.has_verify_meta(), "from_parts objects carry no metadata");
    }

    #[test]
    fn dup1_second_offset_round_trips() {
        // dup1 ignores its second offset when executed, but the bits are
        // architecturally present; text and binary forms must both carry
        // them (regression: tests/property_models.proptest-regressions,
        // Dup { two: false, off1: 0, off2: 1, cont: false }).
        let obj = assemble("dup1 :r0,r1\n").unwrap();
        let (i, _) = Instruction::decode(obj.words()).unwrap();
        assert_eq!(i, Instruction::Dup { two: false, off1: 0, off2: 1, cont: false });
        let lines = disassemble(obj.words());
        assert_eq!(lines, vec!["dup1 :r0,r1".to_string()]);
        let obj2 = assemble(&lines.join("\n")).unwrap();
        assert_eq!(obj.words(), obj2.words());
    }
}
