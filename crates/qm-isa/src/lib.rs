//! The queue machine processing element (thesis Chapter 5).
//!
//! * [`isa`] — the 32-bit instruction set: four-address basic format,
//!   `dup` format, source operand modes (Table 5.1) and the opcode set
//!   (Table 5.2).
//! * [`asm`] — assembler and disassembler for the thesis assembly syntax
//!   (`opcode[+n] [src1[,src2]] [:dst1[,dst2]] [>]`).
//! * [`regs`] — the register file: 16 sliding *window registers* with
//!   presence bits, 16 global registers (PC, QP, POM, NAR among them),
//!   virtual→physical register translation and queue paging (Figs 5.1–5.5).
//! * [`mem`] — the memory interface: address-space map and the
//!   [`mem::DataPort`] trait by which the PE reaches memory (locally flat
//!   in unit tests, bus-arbitrated in `qm-sim`).
//! * [`pe`] — the cycle-counting processing element emulator, with kernel
//!   and channel services abstracted behind [`pe::Services`].
//!
//! # Example: assemble and run a tiny program
//!
//! ```
//! use qm_isa::asm::assemble;
//! use qm_isa::pe::{Pe, NullServices, StepResult};
//! use qm_isa::mem::FlatMemory;
//!
//! // (2+3)+0 → discarded, then trap #3 (halt).
//! let obj = assemble(
//!     "start: plus #2,#3 :r0\n\
//!             plus+1 r0,#0 :dummy\n\
//!             trap #3,#0\n",
//! )?;
//! let mut mem = FlatMemory::new();
//! mem.load_words(qm_isa::mem::CODE_BASE, obj.words());
//! let mut pe = Pe::new(0);
//! pe.reset(qm_isa::mem::CODE_BASE, 0x8000_0400);
//! let mut svc = NullServices::default();
//! loop {
//!     match pe.step(&mut mem, &mut svc) {
//!         StepResult::Continue => {}
//!         StepResult::Trap { entry: 3, .. } => break,
//!         other => panic!("unexpected {other:?}"),
//!     }
//! }
//! # Ok::<(), qm_isa::IsaError>(())
//! ```

pub mod asm;
pub mod decoded;
pub mod isa;
pub mod mem;
pub mod pe;
pub mod regs;

pub use decoded::{DecodedInstr, XSrc};
pub use isa::{Instruction, Opcode, SrcMode};
pub use pe::{CycleModel, Pe, StepResult};

/// Machine word (32-bit, two's complement) — same as [`qm_core::Word`].
pub type Word = i32;

/// Unsigned view of a machine word (addresses, encodings).
pub type UWord = u32;

/// Errors from the assembler, encoder and emulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Assembly source was malformed.
    Asm {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// An instruction word could not be decoded.
    Decode {
        /// The offending word.
        word: u32,
        /// What went wrong.
        msg: String,
    },
    /// A field value was out of range while encoding.
    Encode(String),
}

impl std::fmt::Display for IsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaError::Asm { line, msg } => write!(f, "assembly error at line {line}: {msg}"),
            IsaError::Decode { word, msg } => {
                write!(f, "cannot decode {word:#010x}: {msg}")
            }
            IsaError::Encode(msg) => write!(f, "cannot encode: {msg}"),
        }
    }
}

impl std::error::Error for IsaError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IsaError>;
