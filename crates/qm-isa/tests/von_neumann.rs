//! Conventional (Von Neumann) execution on the queue machine PE.
//!
//! A design goal of the thesis PE (§5.3) is supporting classic
//! register-style programming alongside the queue model: global registers
//! as a register file, branches over comparison results, memory
//! addressing — no operand queue involvement at all. These tests run
//! register-mode programs end to end.

use qm_isa::asm::assemble;
use qm_isa::mem::FlatMemory;
use qm_isa::pe::{NullServices, Pe, StepResult};

fn run(src: &str, max_steps: usize) -> (Pe, FlatMemory) {
    let obj = assemble(src).expect("assembles");
    let mut mem = FlatMemory::new();
    mem.load_words(0, obj.words());
    let mut pe = Pe::new(0);
    pe.reset(0, 0x8000_0400);
    let mut svc = NullServices;
    for _ in 0..max_steps {
        match pe.step(&mut mem, &mut svc) {
            StepResult::Continue => {}
            StepResult::Trap { entry: 3, .. } => return (pe, mem),
            other => panic!("unexpected {other:?}"),
        }
    }
    panic!("program did not halt in {max_steps} steps");
}

#[test]
fn register_mode_fibonacci() {
    // r17 = fib(12) computed with globals only.
    let src = "
        plus #0,#0 :r17      ; a = 0
        plus #1,#0 :r18      ; b = 1
        plus #12,#0 :r19     ; n = 12
loop:   plus r17,r18 :r20    ; t = a + b
        plus r18,#0 :r17     ; a = b
        plus r20,#0 :r18     ; b = t
        minus r19,#1 :r19
        gt r19,#0 :r21
        bne r21,@loop
        trap #3,#0
";
    let (pe, _) = run(src, 200);
    assert_eq!(pe.regs.read_global(17), 144, "fib(12)");
}

#[test]
fn register_mode_gcd() {
    // Euclid's algorithm by repeated subtraction: gcd(252, 105) = 21.
    let src = "
        plus #252,#0 :r17
        plus #105,#0 :r18
loop:   eq r17,r18 :r19
        bne r19,@done
        gt r17,r18 :r19
        bne r19,@bigger
        minus r18,r17 :r18   ; b -= a
        bne #-1,@loop
bigger: minus r17,r18 :r17   ; a -= b
        bne #-1,@loop
done:   trap #3,#0
";
    let (pe, _) = run(src, 2000);
    assert_eq!(pe.regs.read_global(17), 21);
}

#[test]
fn register_mode_memcpy() {
    // Copy 8 words from 0x100400 to 0x100600 with an index register.
    let src = "
        plus #0,#0 :r17              ; i = 0
loop:   lshift r17,#2 :r18           ; off = 4 i
        plus #0x00100400,r18 :r19
        fetch r19,#0 :r20
        plus #0x00100600,r18 :r19
        store r19,r20
        plus r17,#1 :r17
        lt r17,#8 :r21
        bne r21,@loop
        trap #3,#0
";
    let obj = assemble(src).unwrap();
    let mut mem = FlatMemory::new();
    mem.load_words(0, obj.words());
    for i in 0..8u32 {
        #[allow(clippy::cast_possible_wrap)]
        mem.poke(0x0010_0400 + 4 * i, (100 + i) as i32);
    }
    let mut pe = Pe::new(0);
    pe.reset(0, 0x8000_0400);
    let mut svc = NullServices;
    loop {
        match pe.step(&mut mem, &mut svc) {
            StepResult::Continue => {}
            StepResult::Trap { entry: 3, .. } => break,
            other => panic!("unexpected {other:?}"),
        }
    }
    for i in 0..8u32 {
        #[allow(clippy::cast_possible_wrap)]
        let want = (100 + i) as i32;
        assert_eq!(mem.peek(0x0010_0600 + 4 * i), want, "word {i}");
    }
    assert_eq!(pe.stats.mem_reads, 8);
    assert_eq!(pe.stats.mem_writes, 8);
}

#[test]
fn byte_operations_pack_and_unpack() {
    // storb/fchb build a word out of bytes and read them back.
    let src = "
        storb #0x00100800,#0x41
        plus #0x00100801,#0 :r17 >
        storb r17,#0x42
        fchb #0x00100800,#0 :r18
        fchb #0x00100801,#0 :r19
        trap #3,#0
";
    let (pe, mem) = run(src, 50);
    assert_eq!(pe.regs.read_global(18), 0x41);
    assert_eq!(pe.regs.read_global(19), 0x42);
    assert_eq!(mem.peek(0x0010_0800) & 0xFFFF, 0x4241);
}

#[test]
fn mixed_mode_queue_feeds_registers() {
    // Queue-mode arithmetic whose result parks in a global for
    // register-mode post-processing — the dual-paradigm pitch of §5.3.
    let src = "
        plus #6,#0 :r0
        plus #7,#0 :r1
        mul+2 r0,r1 :r0          ; queue mode: 42 at the front
        plus+1 r0,#0 :r17        ; drain the queue into a global
        lshift r17,#1 :r18       ; register mode: 84
        trap #3,#0
";
    let (pe, _) = run(src, 50);
    assert_eq!(pe.regs.read_global(17), 42);
    assert_eq!(pe.regs.read_global(18), 84);
    assert_eq!(pe.regs.present_count(), 0, "queue fully drained");
}

#[test]
fn queue_page_wraps_transparently_under_pom() {
    // Run a queue-mode loop long enough to wrap a 32-word page; presence
    // bits and paging must keep values straight.
    let src = "
        plus #0,#0 :r17          ; sum
        plus #40,#0 :r19         ; iterations
loop:   plus #3,#0 :r0           ; enqueue a 3
        plus+1 r17,r0 :r17       ; consume it
        minus r19,#1 :r19
        gt r19,#0 :r21
        bne r21,@loop
        trap #3,#0
";
    let obj = assemble(src).unwrap();
    let mut mem = FlatMemory::new();
    mem.load_words(0, obj.words());
    let mut pe = Pe::new(0);
    pe.reset(0, 0x8000_0400);
    pe.regs.set_pom(0b1110_0000); // 32-word page
    let mut svc = NullServices;
    loop {
        match pe.step(&mut mem, &mut svc) {
            StepResult::Continue => {}
            StepResult::Trap { entry: 3, .. } => break,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(pe.regs.read_global(17), 120);
    // The queue pointer stayed inside its 32-word page.
    assert!(pe.regs.qp() >= 0x8000_0400 && pe.regs.qp() < 0x8000_0480);
}
