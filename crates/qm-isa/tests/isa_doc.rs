//! Keeps `docs/ISA.md` honest: every opcode the ISA defines must be
//! documented. The reference doc lists each mnemonic in a backticked
//! table cell together with its octal code, so a new `Opcode` variant
//! fails this test until the doc gains a row for it.

use qm_isa::isa::Opcode;

const ISA_DOC: &str = include_str!("../../../docs/ISA.md");

#[test]
fn every_opcode_is_documented() {
    let mut missing = Vec::new();
    for &(op, code) in &Opcode::ALL {
        // The doc writes mnemonics as `mnemonic` table cells; require the
        // backticked form so prose mentions of common words ("or", "and")
        // can't mask an undocumented opcode.
        let cell = format!("`{}`", op.mnemonic());
        if !ISA_DOC.contains(&cell) {
            missing.push((op.mnemonic(), code));
        }
    }
    assert!(missing.is_empty(), "opcodes missing from docs/ISA.md: {missing:?}");
}

#[test]
fn documented_octal_codes_match_the_isa() {
    // Each opcode's table row is "| `mnemonic` | code |" with the code in
    // octal (no prefix). Verify the row exists with the right code so the
    // doc can't silently drift when encodings change.
    for &(op, code) in &Opcode::ALL {
        let row = format!("| `{}` | {:02o} |", op.mnemonic(), code);
        assert!(
            ISA_DOC.contains(&row),
            "docs/ISA.md row for `{}` missing or its octal code is not {:02o}",
            op.mnemonic(),
            code
        );
    }
}
