//! Reference lowering from the indexed queue model to PE assembly.
//!
//! Mirrors how [`qm_core::IndexedProgram`] semantics map onto the real
//! ISA: operands are the window registers at the queue front (`r0`,
//! `r1`), the queue-pointer increment is the actor's arity, the first
//! (up to) two in-window result offsets ride the instruction's
//! destination fields, and any remaining offsets are placed by a
//! `dup1`/`dup2` chain with the continue flag held so `last_result`
//! survives to every copy. The program ends by sending the sink's value
//! to the host channel and trapping `end`; `fetch` leaves read from a
//! zero-initialised `d_<name>` data word emitted after the code.
//!
//! This is the lowering the pipeline property suite drives end-to-end:
//! scheduler → §3.6 construction → `lower` → assembler → verifier.

use qm_core::expr::Op;
use qm_core::IndexedProgram;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Lower an indexed program to assembly source (entry label `main`).
///
/// # Errors
///
/// A message naming the offending instruction when a result offset
/// exceeds the `dup` range (255) or a `fetch` name cannot be a label.
pub fn lower(program: &IndexedProgram) -> Result<String, String> {
    let mut out = String::new();
    let mut data: BTreeSet<&str> = BTreeSet::new();
    for (k, instr) in program.instructions.iter().enumerate() {
        let (mnemonic, srcs) = match &instr.op {
            Op::Literal(v) => ("plus".into(), format!("#{v},#0")),
            Op::Fetch(name) => {
                let ok = !name.is_empty()
                    && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if !ok {
                    return Err(format!("instruction {k}: `{name}` cannot be a data label"));
                }
                data.insert(name);
                ("fetch".into(), format!("#d_{name},#0"))
            }
            Op::Neg => ("minus".into(), "#0,r0".to_string()),
            Op::Not => ("xor".into(), "r0,#-1".to_string()),
            Op::Add => ("plus".into(), "r0,r1".to_string()),
            Op::Sub => ("minus".into(), "r0,r1".to_string()),
            Op::Mul => ("mul".into(), "r0,r1".to_string()),
            Op::Div => ("div".into(), "r0,r1".to_string()),
        };
        let mnemonic: String = mnemonic;
        let arity = instr.op.arity().operands();
        if let Some(&bad) = instr.result_offsets.iter().find(|&&o| o > 255) {
            return Err(format!("instruction {k}: result offset {bad} exceeds the dup range"));
        }
        // First two in-window offsets ride the destination fields; the
        // rest go through a dup chain.
        let mut dsts: Vec<usize> = Vec::new();
        let mut dups: Vec<usize> = Vec::new();
        for &off in &instr.result_offsets {
            if off < 16 && dsts.len() < 2 {
                dsts.push(off);
            } else {
                dups.push(off);
            }
        }
        let label = if k == 0 { "main:" } else { "     " };
        let qp = match arity {
            0 => String::new(),
            n => format!("+{n}"),
        };
        let dst_str = match dsts.as_slice() {
            [] => String::new(),
            [a] => format!(" :r{a}"),
            [a, b] => format!(" :r{a},r{b}"),
            _ => unreachable!("at most two destinations"),
        };
        let cont = if dups.is_empty() { "" } else { " >" };
        let _ = writeln!(out, "{label} {mnemonic}{qp} {srcs}{dst_str}{cont}");
        for (c, chunk) in dups.chunks(2).enumerate() {
            let more = if (c + 1) * 2 < dups.len() { " >" } else { "" };
            match chunk {
                [a, b] => {
                    let _ = writeln!(out, "      dup2 :r{a},r{b}{more}");
                }
                [a] => {
                    let _ = writeln!(out, "      dup1 :r{a}{more}");
                }
                _ => unreachable!("chunks(2)"),
            }
        }
    }
    let label = if program.is_empty() { "main:" } else { "     " };
    let _ = writeln!(out, "{label} send+1 #0,r0");
    let _ = writeln!(out, "      trap #2,#0");
    for name in data {
        let _ = writeln!(out, "d_{name}: .word 0");
    }
    Ok(out)
}

/// [`lower`] then assemble; convenience for the CLI and tests.
///
/// # Errors
///
/// Lowering errors as strings, assembler errors formatted.
pub fn lower_and_assemble(program: &IndexedProgram) -> Result<qm_isa::asm::Object, String> {
    let src = lower(program)?;
    qm_isa::asm::assemble(&src).map_err(|e| format!("lowered program does not assemble: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_object, VerifyOptions};
    use qm_core::indexed::{table_3_4_program, IndexedInstruction};

    #[test]
    fn table_3_4_lowers_assembles_and_verifies() {
        let obj = lower_and_assemble(&table_3_4_program()).unwrap();
        let r = verify_object(&obj, &VerifyOptions::default());
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn wide_fanout_uses_dup_chain() {
        // One literal fanned out to five offsets, consumed by a chain of
        // adds folding them into one value.
        let p = IndexedProgram::new(vec![
            IndexedInstruction::new(Op::Literal(3), vec![0, 1, 2, 3, 7]),
            IndexedInstruction::new(Op::Add, vec![2]),
            IndexedInstruction::new(Op::Add, vec![1]),
            IndexedInstruction::new(Op::Add, vec![0]),
            IndexedInstruction::new(Op::Add, vec![0]),
        ]);
        // Sanity: the indexed model accepts it…
        assert!(p.evaluate(&|_| 0).is_ok(), "{}", p);
        // …and so does the static verifier on the lowered form.
        let src = lower(&p).unwrap();
        assert!(src.contains("dup"), "{src}");
        let obj = qm_isa::asm::assemble(&src).unwrap();
        let r = verify_object(&obj, &VerifyOptions::default());
        assert!(r.is_clean(), "{src}\n{}", r.render());
    }

    #[test]
    fn oversized_offset_is_rejected() {
        let p = IndexedProgram::new(vec![IndexedInstruction::new(Op::Literal(1), vec![300])]);
        assert!(lower(&p).unwrap_err().contains("300"));
    }
}
