//! Static queue-discipline verifier for queue machine object code.
//!
//! The thesis's correctness story is *static*: an instruction sequence
//! is executable only if it is a valid sequence for its acyclic DFG
//! (§3.6), and a spliced program only runs if its contexts and channels
//! are wired consistently. The simulator discovers violations
//! dynamically — as deadlocks or garbage reads; this crate proves their
//! absence (or pinpoints them) at load time, in the spirit of classic
//! bytecode verification:
//!
//! * `queue` *(internal)* / [`verify_object`] — abstract queue-state
//!   dataflow per context: definedness of every queue slot at every
//!   program point, underflow, out-of-page `dup` offsets, join
//!   consistency, trap-ABI arity, control-flow sanity.
//! * `wiring` *(internal)* — splice/channel lints over the fork tree:
//!   dangling channels, channels never read, statically guaranteed
//!   wait-for cycles (reported in the same shape as `qm-sim`'s runtime
//!   deadlock reports).
//! * [`sequence`] — valid-sequence checking of an
//!   [`qm_core::IndexedProgram`] against its source DFG.
//! * [`lower`] — reference lowering from the indexed model to PE
//!   assembly, used by the pipeline property tests and the CLI.
//! * [`names`] — the one formatting helper for context/PC labels shared
//!   with `qm-sim`'s runtime diagnostics.
//!
//! ```
//! use qm_isa::asm::assemble;
//! use qm_verify::{verify_object, VerifyOptions};
//!
//! let obj = assemble(
//!     "main: recv #0,#0 :r0\n\
//!            mul+1 r0,#3 :r0\n\
//!            send+1 #0,r0\n\
//!            trap #2,#0\n",
//! ).unwrap();
//! let report = verify_object(&obj, &VerifyOptions::default());
//! assert!(report.is_clean(), "{}", report.render());
//! ```

pub mod diag;
pub mod lower;
pub mod names;
mod queue;
pub mod sequence;
pub mod traps;
mod wiring;

pub use diag::{Code, Diagnostic, FastPathCertificate, Report, Severity};

use qm_isa::asm::Object;
use qm_isa::UWord;

/// How strictly the simulator treats verification findings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VerifyLevel {
    /// Do not run the verifier.
    Off,
    /// Run the verifier and report findings, but never reject.
    #[default]
    Warn,
    /// Reject any program with error-severity findings before it runs.
    Strict,
}

/// Tunables for a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Queue page size in words: the window `dup` offsets may reach.
    /// Must match the simulator's `queue_page_words`.
    pub page_words: u32,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions { page_words: 256 }
    }
}

/// Verify an object starting from its `main` symbol (or the base
/// address when no `main` exists), following constant fork targets into
/// every statically reachable context.
pub fn verify_object(obj: &Object, opts: &VerifyOptions) -> Report {
    let entry = obj.symbol("main").unwrap_or_else(|| obj.base());
    verify_object_at(obj, entry, opts)
}

/// Verify an object with an explicit entry point.
pub fn verify_object_at(obj: &Object, entry: UWord, opts: &VerifyOptions) -> Report {
    let pass = queue::QueuePass::new(obj, opts);
    let symbols = pass.symbols.clone();
    let mut report = Report::with_symbols(symbols.clone());
    pass.run(entry, &mut report);
    wiring::WiringPass::new(obj, &symbols).run(entry, &mut report);
    report.sort();
    report
}
