//! Abstract queue-state dataflow over assembled object code.
//!
//! The pass walks the control-flow graph of each context (instruction
//! granularity, discovered from the entry point and from constant fork
//! targets) carrying an abstract queue state: a 256-bit mask of *defined*
//! queue slots relative to the current front, a map of slots holding
//! *known constants* (the compiler stages fork targets through the
//! window, so constant propagation is what makes the fork graph
//! statically visible), plus a "previous instruction produced a value"
//! bit for `dup`. The transfer function
//! mirrors [`qm_isa::pe::Pe::step`] exactly — reads happen before the
//! queue pointer advances, destinations are written relative to the new
//! front, `dup` writes relative to the current front — and the join at
//! merge points is set intersection (a slot is defined only if it is
//! defined on every path), so every error this pass reports is a
//! violation on *some* path and every "defined" fact holds on *all*
//! paths.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use qm_isa::asm::Object;
use qm_isa::isa::{Instruction, Opcode, SrcMode, REG_DUMMY, REG_PC, REG_POM, REG_QP};
use qm_isa::{UWord, Word};

use crate::diag::{Code, Diagnostic, Report};
use crate::{names, traps, VerifyOptions};

/// 256 definedness bits, one per queue slot relative to the front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Mask([u64; 4]);

impl Mask {
    pub(crate) const EMPTY: Mask = Mask([0; 4]);

    pub(crate) fn get(&self, i: u32) -> bool {
        i < 256 && self.0[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    pub(crate) fn set(&mut self, i: u32) {
        if i < 256 {
            self.0[(i / 64) as usize] |= 1 << (i % 64);
        }
    }

    /// The queue pointer advanced by `k`: every bit moves down `k`
    /// places (slot `k+n` becomes slot `n`), the top `k` bits clear.
    pub(crate) fn shift_down(&mut self, k: u32) {
        debug_assert!(k < 64);
        if k == 0 {
            return;
        }
        for i in 0..4 {
            let hi = if i + 1 < 4 { self.0[i + 1] << (64 - k) } else { 0 };
            self.0[i] = (self.0[i] >> k) | hi;
        }
    }

    pub(crate) fn intersect(&self, other: &Mask) -> Mask {
        Mask([
            self.0[0] & other.0[0],
            self.0[1] & other.0[1],
            self.0[2] & other.0[2],
            self.0[3] & other.0[3],
        ])
    }
}

/// Abstract value tracked through window slots for fork-target
/// discovery. The compiler stages fork targets through the window
/// (`plus #child,#0 :r0` … `trap+1 #0,r0`), and `while`/`if` lowerings
/// select between continuation addresses with `(a ∧ m) ∨ (b ∧ ¬m)`
/// where `m` is a comparison result (0 or −1 in this ISA); tracking
/// both idioms — sets, because selects nest — is what makes the fork
/// graph statically visible.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AbsVal {
    /// A comparison result: 0 or −1 (the ISA's boolean convention).
    Bool,
    /// One of these constants (sorted, deduped, non-empty, ≤
    /// [`SET_CAP`]). A singleton is an ordinary known constant.
    OneOf(Vec<Word>),
    /// `v ∧ bool` for `v` in the set: either 0 or one of the set.
    /// `or`-ing two `Gated` values assumes their gates are
    /// complementary, which is how the compiler emits `sel`; the
    /// queue-discipline checks do not depend on this assumption.
    Gated(Vec<Word>),
}

/// Bound on tracked constant-set size; larger sets decay to unknown.
const SET_CAP: usize = 16;

/// Normalize a value set (sorted, deduped, capped).
fn abs_set(mut v: Vec<Word>) -> Option<AbsVal> {
    v.sort_unstable();
    v.dedup();
    (!v.is_empty() && v.len() <= SET_CAP).then_some(AbsVal::OneOf(v))
}

/// Apply `f` across two value sets.
fn cross(xs: &[Word], ys: &[Word], f: impl Fn(Word, Word) -> Word) -> Option<AbsVal> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for &x in xs {
        for &y in ys {
            out.push(f(x, y));
        }
    }
    abs_set(out)
}

/// Abstract state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    /// Defined queue slots relative to the current front.
    defined: Mask,
    /// Slots (relative to the front) holding a known [`AbsVal`].
    consts: BTreeMap<u8, AbsVal>,
    /// A value-producing instruction has executed (so `dup` has a
    /// result to duplicate) on every path to this point.
    have_result: bool,
    /// `last_result` when it is statically known.
    result_val: Option<AbsVal>,
}

impl State {
    const ENTRY: State = State {
        defined: Mask::EMPTY,
        consts: BTreeMap::new(),
        have_result: false,
        result_val: None,
    };

    fn join(&self, other: &State) -> State {
        State {
            defined: self.defined.intersect(&other.defined),
            consts: self
                .consts
                .iter()
                .filter(|(k, v)| other.consts.get(*k) == Some(*v))
                .map(|(&k, v)| (k, v.clone()))
                .collect(),
            have_result: self.have_result && other.have_result,
            result_val: if self.result_val == other.result_val {
                self.result_val.clone()
            } else {
                None
            },
        }
    }
}

/// Constant-fold an ALU result; `None` when the opcode/operand shape is
/// not one the [`AbsVal`] domain models.
fn fold(op: Opcode, a: Option<AbsVal>, b: Option<AbsVal>) -> Option<AbsVal> {
    use AbsVal::{Bool, Gated, OneOf};
    if matches!(
        op,
        Opcode::Ge
            | Opcode::Ne
            | Opcode::Gt
            | Opcode::Lt
            | Opcode::Eq
            | Opcode::Le
            | Opcode::His
            | Opcode::Hi
            | Opcode::Lo
            | Opcode::Los
    ) {
        return Some(Bool);
    }
    match (op, a?, b?) {
        (Opcode::Plus, OneOf(x), OneOf(y)) => cross(&x, &y, Word::wrapping_add),
        (Opcode::Plus, v, OneOf(z)) | (Opcode::Plus, OneOf(z), v) if z == [0] => Some(v),
        (Opcode::Minus, OneOf(x), OneOf(y)) => cross(&x, &y, Word::wrapping_sub),
        (Opcode::Mul, OneOf(x), OneOf(y)) => cross(&x, &y, Word::wrapping_mul),
        (Opcode::And, OneOf(x), OneOf(y)) => cross(&x, &y, |p, q| p & q),
        (Opcode::And, OneOf(v), Bool) | (Opcode::And, Bool, OneOf(v)) => Some(Gated(v)),
        (Opcode::Or, OneOf(x), OneOf(y)) => cross(&x, &y, |p, q| p | q),
        (Opcode::Or, Gated(x), Gated(y)) => abs_set([x, y].concat()),
        (Opcode::Xor, OneOf(x), OneOf(y)) => cross(&x, &y, |p, q| p ^ q),
        (Opcode::Xor, Bool, OneOf(z)) | (Opcode::Xor, OneOf(z), Bool) if z == [-1] => Some(Bool),
        _ => None,
    }
}

/// Everything the transfer function says about one instruction under one
/// in-state.
struct StepOut {
    out: State,
    /// Successor program points (empty for terminal instructions).
    succs: Vec<UWord>,
    /// Findings at this point (deterministic in `(addr, in-state)`).
    diags: Vec<Diagnostic>,
    /// Constant fork targets (new context entry points).
    forks: Vec<UWord>,
}

pub(crate) struct QueuePass<'a> {
    obj: &'a Object,
    opts: &'a VerifyOptions,
    end: UWord,
    /// Instruction starts from assembler metadata, when present.
    starts: Option<HashSet<UWord>>,
    /// Symbols sorted by address, for context labels.
    pub(crate) symbols: Vec<(String, UWord)>,
}

impl<'a> QueuePass<'a> {
    pub(crate) fn new(obj: &'a Object, opts: &'a VerifyOptions) -> Self {
        let starts = if obj.has_verify_meta() {
            Some(obj.instr_addrs().iter().copied().collect())
        } else {
            None
        };
        let mut symbols: Vec<(String, UWord)> =
            obj.symbols().iter().map(|(n, &a)| (n.clone(), a)).collect();
        symbols.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        QueuePass { obj, opts, end: obj.base() + obj.size_bytes(), starts, symbols }
    }

    fn decode_at(&self, addr: UWord) -> Result<(Instruction, UWord), String> {
        if addr < self.obj.base() || addr >= self.end {
            return Err(format!("address {addr:#x} is outside the code"));
        }
        if !(addr - self.obj.base()).is_multiple_of(4) {
            return Err(format!("address {addr:#x} is not word-aligned"));
        }
        let idx = ((addr - self.obj.base()) / 4) as usize;
        let hi = (idx + 3).min(self.obj.words().len());
        match Instruction::decode(&self.obj.words()[idx..hi]) {
            #[allow(clippy::cast_possible_truncation)]
            Ok((instr, used)) => Ok((instr, 4 * used as UWord)),
            Err(e) => Err(e.to_string()),
        }
    }

    /// A valid branch/fork target: inside the code, aligned, and an
    /// instruction start (per metadata when available, by decodability
    /// otherwise).
    fn is_instr_start(&self, addr: UWord) -> bool {
        match &self.starts {
            Some(s) => s.contains(&addr),
            None => self.decode_at(addr).is_ok(),
        }
    }

    fn diag(&self, code: Code, addr: UWord, ctx: &str, msg: String) -> Diagnostic {
        Diagnostic::new(code, msg).in_ctx(ctx).at_pc(addr).at_line(self.obj.line_for(addr))
    }

    /// Read one source operand: definedness check plus constant
    /// extraction.
    fn read_src(
        &self,
        mode: SrcMode,
        state: &State,
        addr: UWord,
        ctx: &str,
        diags: &mut Vec<Diagnostic>,
    ) -> Option<AbsVal> {
        match mode {
            SrcMode::Window(n) => {
                if !state.defined.get(u32::from(n)) {
                    diags.push(self.diag(
                        Code::UndefinedWindowRead,
                        addr,
                        ctx,
                        format!("read of r{n}: queue slot {n} holds no value on some path"),
                    ));
                }
                state.consts.get(&n).cloned()
            }
            SrcMode::Global(_) => None,
            SrcMode::Imm(v) => Some(AbsVal::OneOf(vec![Word::from(v)])),
            SrcMode::ImmWord(v) => Some(AbsVal::OneOf(vec![v])),
        }
    }

    /// Queue-pointer advance: underflow check plus the mask shift.
    fn advance(
        &self,
        state: &mut State,
        qp_inc: u8,
        addr: UWord,
        ctx: &str,
        diags: &mut Vec<Diagnostic>,
    ) {
        let undefined: Vec<u32> =
            (0..u32::from(qp_inc)).filter(|&i| !state.defined.get(i)).collect();
        if !undefined.is_empty() {
            diags.push(self.diag(
                Code::QueueUnderflow,
                addr,
                ctx,
                format!(
                    "queue underflow: +{qp_inc} consumes slot(s) {undefined:?} that hold no \
                     value on some path"
                ),
            ));
        }
        state.defined.shift_down(u32::from(qp_inc));
        state.consts = state
            .consts
            .iter()
            .filter(|(&k, _)| k >= qp_inc)
            .map(|(&k, v)| (k - qp_inc, v.clone()))
            .collect();
    }

    /// Write a destination register (post-advance); `val` is the written
    /// value when statically known. Returns `false` when the write makes
    /// the rest of the path unanalyzable (pc/qp/pom).
    fn write_dst(
        &self,
        state: &mut State,
        dst: u8,
        val: Option<AbsVal>,
        addr: UWord,
        ctx: &str,
        diags: &mut Vec<Diagnostic>,
    ) -> bool {
        match dst {
            d if d < 16 => {
                state.defined.set(u32::from(d));
                match val {
                    Some(v) => {
                        state.consts.insert(d, v);
                    }
                    None => {
                        state.consts.remove(&d);
                    }
                }
                true
            }
            REG_PC | REG_QP | REG_POM => {
                diags.push(self.diag(
                    Code::Unanalyzable,
                    addr,
                    ctx,
                    format!(
                        "write to r{dst} ({}) escapes static analysis; the path is not \
                         checked past this point",
                        match dst {
                            REG_PC => "pc",
                            REG_QP => "qp",
                            _ => "pom",
                        }
                    ),
                ));
                false
            }
            _ => true, // plain global (incl. DUMMY): no queue effect
        }
    }

    /// The successor for straight-line flow, checking for running off
    /// the end of the code or into data words.
    fn fall_through(
        &self,
        addr: UWord,
        size: UWord,
        ctx: &str,
        succs: &mut Vec<UWord>,
        diags: &mut Vec<Diagnostic>,
    ) {
        let next = addr + size;
        if next >= self.end {
            diags.push(self.diag(
                Code::RunsOffEnd,
                addr,
                ctx,
                "execution runs off the end of the code (no terminating trap)".into(),
            ));
        } else if !self.is_instr_start(next) {
            diags.push(self.diag(
                Code::RunsOffEnd,
                addr,
                ctx,
                format!("execution continues into non-instruction words at {next:#x}"),
            ));
        } else {
            succs.push(next);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(&self, addr: UWord, in_state: &State, ctx: &str) -> StepOut {
        let mut out = StepOut {
            out: in_state.clone(),
            succs: Vec::new(),
            diags: Vec::new(),
            forks: Vec::new(),
        };
        let (instr, size) = match self.decode_at(addr) {
            Ok(x) => x,
            Err(msg) => {
                out.diags.push(self.diag(
                    Code::Undecodable,
                    addr,
                    ctx,
                    format!("execution reaches an undecodable word: {msg}"),
                ));
                return out;
            }
        };
        match instr {
            Instruction::Dup { two, off1, off2, .. } => {
                if !in_state.have_result {
                    out.diags.push(self.diag(
                        Code::DupWithoutResult,
                        addr,
                        ctx,
                        "dup with no preceding value-producing instruction on some path".into(),
                    ));
                }
                let offs: &[u8] = if two { &[off1, off2] } else { &[off1] };
                for &off in offs {
                    if u32::from(off) >= self.opts.page_words {
                        out.diags.push(self.diag(
                            Code::DupOutsideWindow,
                            addr,
                            ctx,
                            format!(
                                "dup offset {off} reaches outside the {}-word queue page",
                                self.opts.page_words
                            ),
                        ));
                    } else if in_state.defined.get(u32::from(off)) {
                        out.diags.push(self.diag(
                            Code::SlotOverwrite,
                            addr,
                            ctx,
                            format!("dup overwrites live queue slot {off}"),
                        ));
                    }
                    out.out.defined.set(u32::from(off));
                    match &in_state.result_val {
                        Some(v) => {
                            out.out.consts.insert(off, v.clone());
                        }
                        None => {
                            out.out.consts.remove(&off);
                        }
                    }
                }
                self.fall_through(addr, size, ctx, &mut out.succs, &mut out.diags);
            }
            Instruction::Basic { op, src1, src2, dst1, dst2, qp_inc, .. } => {
                let a = self.read_src(src1, in_state, addr, ctx, &mut out.diags);
                let b = self.read_src(src2, in_state, addr, ctx, &mut out.diags);
                match op {
                    Opcode::Bne | Opcode::Beq => {
                        self.advance(&mut out.out, qp_inc, addr, ctx, &mut out.diags);
                        // Constant conditions fold: `beq #0,@l` is the
                        // unconditional-jump idiom, `bne #0,…` never fires.
                        let taken = match &a {
                            Some(AbsVal::OneOf(v)) if v.len() == 1 => {
                                Some((v[0] != 0) == (op == Opcode::Bne))
                            }
                            _ => None,
                        };
                        let next = addr + size;
                        if taken != Some(true) {
                            if next < self.end && self.is_instr_start(next) {
                                out.succs.push(next);
                            } else {
                                out.diags.push(self.diag(
                                    Code::RunsOffEnd,
                                    addr,
                                    ctx,
                                    "branch fall-through runs off the end of the code".into(),
                                ));
                            }
                        }
                        if taken != Some(false) {
                            match &b {
                                Some(AbsVal::OneOf(v)) if v.len() == 1 => {
                                    #[allow(clippy::cast_sign_loss)]
                                    let target = next.wrapping_add(v[0] as UWord);
                                    if self.is_instr_start(target) {
                                        out.succs.push(target);
                                    } else {
                                        out.diags.push(self.diag(
                                            Code::BadBranchTarget,
                                            addr,
                                            ctx,
                                            format!(
                                                "branch target {target:#x} is outside the code \
                                                 or not an instruction start"
                                            ),
                                        ));
                                    }
                                }
                                _ => {
                                    out.diags.push(
                                        self.diag(
                                            Code::Unanalyzable,
                                            addr,
                                            ctx,
                                            "branch offset depends on a runtime value; only the \
                                         fall-through path is checked"
                                                .into(),
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    Opcode::Trap | Opcode::Ftrap => {
                        self.advance(&mut out.out, qp_inc, addr, ctx, &mut out.diags);
                        self.step_trap(addr, size, a, b, dst1, dst2, ctx, &mut out);
                    }
                    Opcode::Fret | Opcode::Rett => {
                        out.diags.push(self.diag(
                            Code::Unanalyzable,
                            addr,
                            ctx,
                            format!("kernel-mode return ({op}) in user code ends analysis"),
                        ));
                    }
                    _ => {
                        // ALU / compare / memory / channel: value-producing
                        // unless store/send.
                        self.advance(&mut out.out, qp_inc, addr, ctx, &mut out.diags);
                        let produces = !matches!(op, Opcode::Store | Opcode::Storb | Opcode::Send);
                        let mut analyzable = true;
                        if produces {
                            let val = fold(op, a, b);
                            analyzable &= self.write_dst(
                                &mut out.out,
                                dst1,
                                val.clone(),
                                addr,
                                ctx,
                                &mut out.diags,
                            );
                            analyzable &= self.write_dst(
                                &mut out.out,
                                dst2,
                                val.clone(),
                                addr,
                                ctx,
                                &mut out.diags,
                            );
                            out.out.have_result = true;
                            out.out.result_val = val;
                        }
                        if analyzable {
                            self.fall_through(addr, size, ctx, &mut out.succs, &mut out.diags);
                        }
                    }
                }
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn step_trap(
        &self,
        addr: UWord,
        size: UWord,
        entry: Option<AbsVal>,
        arg: Option<AbsVal>,
        dst1: u8,
        dst2: u8,
        ctx: &str,
        out: &mut StepOut,
    ) {
        let entry = match &entry {
            Some(AbsVal::OneOf(v)) if v.len() == 1 => Some(v[0]),
            _ => None,
        };
        let Some(entry) = entry else {
            out.diags.push(self.diag(
                Code::Unanalyzable,
                addr,
                ctx,
                "trap entry depends on a runtime value; results assumed written".into(),
            ));
            self.write_dst(&mut out.out, dst1, None, addr, ctx, &mut out.diags);
            self.write_dst(&mut out.out, dst2, None, addr, ctx, &mut out.diags);
            out.out.have_result = true;
            out.out.result_val = None;
            self.fall_through(addr, size, ctx, &mut out.succs, &mut out.diags);
            return;
        };
        let Some(results) = traps::result_count(entry) else {
            out.diags.push(self.diag(
                Code::Unanalyzable,
                addr,
                ctx,
                format!("unknown kernel entry {entry}; the simulator would fault here"),
            ));
            self.write_dst(&mut out.out, dst1, None, addr, ctx, &mut out.diags);
            self.write_dst(&mut out.out, dst2, None, addr, ctx, &mut out.diags);
            out.out.have_result = true;
            out.out.result_val = None;
            self.fall_through(addr, size, ctx, &mut out.succs, &mut out.diags);
            return;
        };
        // Destinations the kernel entry never writes must be DUMMY —
        // anything else reads as expecting a result that never comes.
        let name = traps::name(entry);
        if results < 2 && dst2 != REG_DUMMY {
            out.diags.push(self.diag(
                Code::TrapArityMismatch,
                addr,
                ctx,
                format!("{name} (entry {entry}) never writes a second result, but dst2 is r{dst2}"),
            ));
        }
        if results < 1 && dst1 != REG_DUMMY {
            out.diags.push(self.diag(
                Code::TrapArityMismatch,
                addr,
                ctx,
                format!("{name} (entry {entry}) never writes a result, but dst1 is r{dst1}"),
            ));
        }
        if results >= 1 {
            self.write_dst(&mut out.out, dst1, None, addr, ctx, &mut out.diags);
            out.out.have_result = true;
            out.out.result_val = None;
        }
        if results >= 2 {
            self.write_dst(&mut out.out, dst2, None, addr, ctx, &mut out.diags);
        }
        if traps::is_fork(entry) {
            let targets: Option<Vec<Word>> = match arg {
                Some(AbsVal::OneOf(ts)) => Some(ts),
                _ => None,
            };
            match targets {
                Some(ts) => {
                    for target in ts {
                        #[allow(clippy::cast_sign_loss)]
                        if self.is_instr_start(target as UWord) {
                            out.forks.push(target as UWord);
                        } else {
                            out.diags.push(self.diag(
                                Code::BadForkTarget,
                                addr,
                                ctx,
                                format!("{name} target {target:#x} is not a code entry point"),
                            ));
                        }
                    }
                }
                None => {
                    out.diags.push(self.diag(
                        Code::Unanalyzable,
                        addr,
                        ctx,
                        format!(
                            "{name} target depends on a runtime value; the child context \
                                 is not checked"
                        ),
                    ));
                }
            }
        }
        if matches!(entry, traps::END | traps::HALT) {
            return; // terminal: no successor
        }
        self.fall_through(addr, size, ctx, &mut out.succs, &mut out.diags);
    }

    /// Analyze one context rooted at `entry`; returns constant fork
    /// targets found (candidate further contexts).
    fn analyze_context(
        &self,
        entry: UWord,
        ctx: &str,
        report: &mut Report,
        seen: &mut HashSet<(Code, UWord, String)>,
    ) -> BTreeSet<UWord> {
        let mut states: HashMap<UWord, State> = HashMap::new();
        states.insert(entry, State::ENTRY);
        let mut work: VecDeque<UWord> = VecDeque::from([entry]);
        let mut rounds = 0usize;
        while let Some(addr) = work.pop_front() {
            rounds += 1;
            if rounds > 300 * self.obj.words().len().max(1) {
                break; // descending-chain bound; unreachable in practice
            }
            let in_state = states[&addr].clone();
            let step = self.step(addr, &in_state, ctx);
            for succ in step.succs {
                match states.get(&succ) {
                    None => {
                        states.insert(succ, step.out.clone());
                        work.push_back(succ);
                    }
                    Some(old) => {
                        let joined = old.join(&step.out);
                        if joined != *old {
                            states.insert(succ, joined);
                            work.push_back(succ);
                        }
                    }
                }
            }
        }

        // Final pass over the fixpoint: emit diagnostics once per
        // program point, gather fork targets, and record the per-edge
        // out-masks for the join-consistency lint.
        let mut forks = BTreeSet::new();
        let mut inflows: BTreeMap<UWord, Vec<(UWord, Mask)>> = BTreeMap::new();
        let addrs: BTreeSet<UWord> = states.keys().copied().collect();
        for &addr in &addrs {
            let step = self.step(addr, &states[&addr], ctx);
            for d in step.diags {
                if seen.insert((d.code, addr, d.message.clone())) {
                    report.push(d);
                }
            }
            forks.extend(step.forks);
            for succ in step.succs {
                inflows.entry(succ).or_default().push((addr, step.out.defined));
            }
        }
        for (to, froms) in inflows {
            let distinct: Vec<&Mask> = {
                let mut seen_masks: Vec<&Mask> = Vec::new();
                for (_, m) in &froms {
                    if !seen_masks.contains(&m) {
                        seen_masks.push(m);
                    }
                }
                seen_masks
            };
            if distinct.len() > 1 {
                let preds: Vec<String> =
                    froms.iter().map(|(f, _)| names::pc_span(&self.symbols, *f)).collect();
                let d = self
                    .diag(
                        Code::JoinDepthMismatch,
                        to,
                        ctx,
                        "paths reach this join with different live queue slots".into(),
                    )
                    .note(format!("joined from {}", preds.join(", ")));
                if seen.insert((d.code, to, d.message.clone())) {
                    report.push(d);
                }
            }
        }
        forks
    }

    /// Run the pass: analyze the context at `entry` and, transitively,
    /// every context reachable through constant fork targets.
    pub(crate) fn run(&self, entry: UWord, report: &mut Report) {
        let mut seen: HashSet<(Code, UWord, String)> = HashSet::new();
        let mut done: BTreeSet<UWord> = BTreeSet::new();
        let mut pending: VecDeque<UWord> = VecDeque::from([entry]);
        while let Some(e) = pending.pop_front() {
            if !done.insert(e) {
                continue;
            }
            let label = names::pc_span(&self.symbols, e);
            let forks = self.analyze_context(e, &label, report, &mut seen);
            pending.extend(forks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_object, VerifyOptions};
    use qm_isa::asm::assemble;

    fn verify(src: &str) -> Report {
        verify_object(&assemble(src).unwrap(), &VerifyOptions::default())
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn mask_shift_moves_bits_down() {
        let mut m = Mask::EMPTY;
        m.set(0);
        m.set(2);
        m.set(65);
        m.set(255);
        m.shift_down(2);
        assert!(m.get(0), "bit 2 became bit 0");
        assert!(m.get(63), "bit 65 became bit 63");
        assert!(m.get(253));
        assert!(!m.get(255));
        m.shift_down(0);
        assert!(m.get(0));
    }

    #[test]
    fn clean_echo_program_verifies() {
        let r = verify(
            "main: recv #0,#0 :r0\n\
                   mul+1 r0,#3 :r0\n\
                   send+1 #0,r0\n\
                   trap #2,#0\n",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn underflow_is_an_error() {
        let r = verify("main: plus+2 #1,#2 :r0\n trap #2,#0\n");
        assert!(codes(&r).contains(&"QV0001"), "{}", r.render());
    }

    #[test]
    fn undefined_window_read_is_an_error() {
        let r = verify("main: plus r0,#1 :r1\n trap #2,#0\n");
        assert!(codes(&r).contains(&"QV0002"), "{}", r.render());
    }

    #[test]
    fn dup_outside_page_is_an_error() {
        let src = "main: plus #1,#0 :r0\n dup1 :r100\n trap #2,#0\n";
        let small = VerifyOptions { page_words: 64 };
        let r = verify_object(&assemble(src).unwrap(), &small);
        assert!(r.diags.iter().any(|d| d.code == Code::DupOutsideWindow), "{}", r.render());
        // The default 256-word page accepts the same offset.
        let r = verify(src);
        assert!(!r.diags.iter().any(|d| d.code == Code::DupOutsideWindow), "{}", r.render());
    }

    #[test]
    fn dup_without_result_and_overwrite_warn() {
        let r = verify("main: dup1 :r3\n trap #2,#0\n");
        assert!(codes(&r).contains(&"QV0005"), "{}", r.render());
        let r = verify("main: plus #1,#0 :r0\n dup1 :r0\n trap #2,#0\n");
        assert!(codes(&r).contains(&"QV0006"), "{}", r.render());
    }

    #[test]
    fn missing_terminator_runs_off_end() {
        let r = verify("main: plus #1,#0 :r0\n");
        assert!(codes(&r).contains(&"QV0104"), "{}", r.render());
    }

    #[test]
    fn falling_into_data_is_flagged() {
        let r = verify("main: plus #1,#0 :r0\n data: .word 7\n");
        assert!(codes(&r).contains(&"QV0104"), "{}", r.render());
    }

    #[test]
    fn bad_branch_target_is_an_error() {
        let r = verify("main: bne #-1,#0x1000\n trap #2,#0\n");
        assert!(codes(&r).contains(&"QV0102"), "{}", r.render());
    }

    #[test]
    fn branch_into_immediate_word_is_flagged() {
        // Target 8 is fetch's trailing immediate word, not an
        // instruction start — only assembler metadata can tell.
        let r = verify(
            "main: bne #-1,#4\n\
                   fetch #d,#0 :r0\n\
                   trap #2,#0\n\
             d:    .word 9\n",
        );
        assert!(codes(&r).contains(&"QV0102"), "{}", r.render());
    }

    #[test]
    fn join_depth_mismatch_warns() {
        let r = verify(
            "main: lt #1,#2 :r0\n\
                   bne r0,@skip\n\
                   plus #5,#0 :r1\n\
             skip: trap #2,#0\n",
        );
        assert!(codes(&r).contains(&"QV0004"), "{}", r.render());
        assert!(!r.has_errors(), "{}", r.render());
    }

    #[test]
    fn balanced_branch_paths_do_not_warn() {
        let r = verify(
            "main: lt #1,#2 :r0\n\
                   bne r0,@other\n\
                   plus #5,#0 :r1\n\
                   beq #0,@done\n\
             other: plus #6,#0 :r1\n\
             done: send r1,#0\n\
                   trap #2,#0\n",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn fork_spawns_child_analysis() {
        // The child reads r0 undefined — the finding is attributed to
        // the child context label.
        let r = verify(
            "main: trap #0,#child :r0,r1\n\
                   trap #2,#0\n\
             child: send r18,r0\n\
                    trap #2,#0\n",
        );
        let d = r.diags.iter().find(|d| d.code == Code::UndefinedWindowRead).expect("child diag");
        assert_eq!(d.ctx.as_deref(), Some("child"), "{}", r.render());
    }

    #[test]
    fn bad_fork_target_is_an_error() {
        let r = verify("main: trap #0,#0x700 :r0,r1\n trap #2,#0\n");
        assert!(codes(&r).contains(&"QV0105"), "{}", r.render());
    }

    #[test]
    fn ifork_second_destination_is_arity_mismatch() {
        let r = verify(
            "main: trap #1,#child :r0,r1\n\
                   trap #2,#0\n\
             child: trap #2,#0\n",
        );
        assert!(codes(&r).contains(&"QV0007"), "{}", r.render());
    }

    #[test]
    fn wait_with_destination_is_arity_mismatch() {
        let r = verify("main: trap #5,#10 :r0\n trap #2,#0\n");
        assert!(codes(&r).contains(&"QV0007"), "{}", r.render());
    }

    #[test]
    fn pc_write_ends_analysis_with_warning() {
        let r = verify("main: plus #8,#0 :pc\n trap #2,#0\n");
        assert!(codes(&r).contains(&"QV0101"), "{}", r.render());
        assert!(!r.has_errors(), "{}", r.render());
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // A self-consistent loop: each iteration consumes the counter
        // slot and produces a fresh one, so the mask at the head is
        // stable across the back edge and the analysis terminates.
        let r = verify(
            "main: plus #0,#0 :r0\n\
             loop: plus+1 r0,#1 :r0\n\
                   lt r0,#10 :r1\n\
                   bne r1,@loop\n\
                   trap #2,#0\n",
        );
        // The back edge carries {r0, r1} while loop entry carries {r0}:
        // the join lint may warn, but nothing is an error.
        assert!(!r.has_errors(), "{}", r.render());
    }
}
