//! Valid-sequence checking: an [`IndexedProgram`] against its source DFG.
//!
//! The thesis (§3.6) calls a linear instruction order *valid* for an
//! acyclic data-flow graph when it is a topological order under `π_G`
//! and every actor finds its operands — in operand-slot order — exactly
//! where its predecessors' result indices put them. This pass replays
//! the program over an abstract queue of *node identities* (not
//! values): each consumed slot must hold precisely the predecessor the
//! DFG names for that operand position, results must land on holes, and
//! the run must end with the sink's value alone at the front.

use qm_core::dfg::{Dag, NodeId};
use qm_core::expr::Op;
use qm_core::IndexedProgram;

use crate::diag::{Code, Diagnostic, Report};

/// Check that `program` is a valid sequence for `dag` linearised as
/// `order`. Returns a report; [`Report::has_errors`] is the rejection
/// condition.
pub fn check_indexed(dag: &Dag<Op>, order: &[NodeId], program: &IndexedProgram) -> Report {
    let mut report = Report::default();
    let mut bad = |code: Code, msg: String| report.push(Diagnostic::new(code, msg));

    if order.len() != dag.len() || program.len() != order.len() {
        bad(
            Code::BadSequence,
            format!(
                "length mismatch: graph has {} node(s), order {}, program {}",
                dag.len(),
                order.len(),
                program.len()
            ),
        );
        return report;
    }
    if !dag.respects_partial_order(order) {
        bad(Code::BadSequence, "instruction order violates the graph partial order π_G".into());
        return report;
    }
    // Structural cross-check via the edge export hook: every labelled
    // edge (v, w, l) must agree with w's ordered predecessor list.
    for (v, w, l) in dag.edges() {
        if dag.preds(w).get(l) != Some(&v) {
            bad(
                Code::BadSequence,
                format!("edge ({v}, {w}, {l}) disagrees with node {w}'s operand list"),
            );
            return report;
        }
    }

    // Replay over a queue of node identities.
    let mut queue: Vec<Option<NodeId>> = Vec::new();
    let mut front = 0usize;
    for (k, (&v, instr)) in order.iter().zip(&program.instructions).enumerate() {
        if instr.op != *dag.payload(v) {
            bad(
                Code::BadSequence,
                format!(
                    "instruction {k} is `{}` but the order names node {v} (`{}`)",
                    instr.op.mnemonic(),
                    dag.payload(v).mnemonic()
                ),
            );
            return report;
        }
        let arity = dag.payload(v).arity().operands();
        if dag.preds(v).len() != arity {
            bad(
                Code::BadSequence,
                format!("node {v} has {} inputs, arity needs {arity}", dag.preds(v).len()),
            );
            return report;
        }
        for (slot, &want) in dag.preds(v).iter().enumerate() {
            match queue.get(front + slot).copied().flatten() {
                Some(got) if got == want => {}
                Some(got) => bad(
                    Code::OffsetMismatch,
                    format!(
                        "instruction {k} (node {v}) operand {slot} should be node {want}'s \
                         result but queue position {} holds node {got}'s",
                        front + slot
                    ),
                ),
                None => bad(
                    Code::OffsetMismatch,
                    format!(
                        "instruction {k} (node {v}) operand {slot}: queue position {} is a \
                         hole — node {want}'s result was never placed there",
                        front + slot
                    ),
                ),
            }
        }
        front += arity;
        for &off in &instr.result_offsets {
            let idx = front + off;
            if queue.len() <= idx {
                queue.resize(idx + 1, None);
            }
            if queue[idx].is_some() {
                bad(
                    Code::OffsetMismatch,
                    format!(
                        "instruction {k} (node {v}) result offset {off} lands on live queue \
                         position {idx}"
                    ),
                );
            }
            queue[idx] = Some(v);
        }
    }

    let live: Vec<usize> = (front..queue.len()).filter(|&i| queue[i].is_some()).collect();
    let sink = dag.node_ids().find(|&v| dag.succs(v).is_empty());
    match (live.as_slice(), sink) {
        ([one], Some(s)) if *one == front && queue[*one] == Some(s) => {}
        (_, None) => bad(Code::BadSequence, "graph has no sink".into()),
        _ => bad(
            Code::BadSequence,
            format!(
                "program must end with exactly the sink's value at the queue front; {} live \
                 slot(s) remain",
                live.len()
            ),
        ),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qm_core::indexed::{table_3_4_program, IndexedInstruction};

    /// The Table 3.4 graph: d ← a/(a+b) + (a+b)·c.
    fn table_3_4_dag() -> (Dag<Op>, Vec<NodeId>) {
        let mut g = Dag::new();
        let a = g.add_node(Op::Fetch("a".into()), &[]);
        let b = g.add_node(Op::Fetch("b".into()), &[]);
        let c = g.add_node(Op::Fetch("c".into()), &[]);
        let sum = g.add_node(Op::Add, &[a, b]);
        let div = g.add_node(Op::Div, &[a, sum]);
        let mul = g.add_node(Op::Mul, &[sum, c]);
        let out = g.add_node(Op::Add, &[div, mul]);
        (g, vec![a, b, c, sum, div, mul, out])
    }

    #[test]
    fn construction_output_is_valid() {
        let (g, order) = table_3_4_dag();
        let p = g.to_indexed_program(&order).unwrap();
        let r = check_indexed(&g, &order, &p);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn thesis_table_3_4_is_valid() {
        let (g, order) = table_3_4_dag();
        let r = check_indexed(&g, &order, &table_3_4_program());
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn wrong_offset_is_detected() {
        let (g, order) = table_3_4_dag();
        let mut p = g.to_indexed_program(&order).unwrap();
        // Shift one producer's result: a consumer now reads the wrong
        // node (or a hole).
        p.instructions[1].result_offsets[0] += 1;
        let r = check_indexed(&g, &order, &p);
        assert!(r.diags.iter().any(|d| d.code == Code::OffsetMismatch), "{}", r.render());
    }

    #[test]
    fn wrong_op_is_detected() {
        let (g, order) = table_3_4_dag();
        let mut p = g.to_indexed_program(&order).unwrap();
        p.instructions[3] =
            IndexedInstruction::new(Op::Sub, p.instructions[3].result_offsets.clone());
        let r = check_indexed(&g, &order, &p);
        assert!(r.diags.iter().any(|d| d.code == Code::BadSequence), "{}", r.render());
    }

    #[test]
    fn non_topological_order_is_rejected() {
        let (g, mut order) = table_3_4_dag();
        order.swap(0, 3); // sum before its operand a
        let p = g.to_indexed_program(&g.topo_order()).unwrap();
        let r = check_indexed(&g, &order, &p);
        assert!(r.has_errors(), "{}", r.render());
    }
}
