//! Shared naming helpers for contexts and program points.
//!
//! Runtime wait-for reports (`qm-sim`'s deadlock diagnostics), trace
//! lanes, and the static wiring lints in this crate all label the same
//! things: contexts and PCs. Historically the simulator named contexts
//! by bare index in deadlock reports but by a different spelling in
//! traces; everything now routes through these helpers so the naming is
//! identical everywhere.

use qm_isa::UWord;

/// Canonical label for a context: `ctx3`, or `ctx3 (fan.2)` when a
/// symbol for its entry point is known.
#[must_use]
pub fn ctx_label(ctx: usize, symbol: Option<&str>) -> String {
    match symbol {
        Some(sym) if !sym.is_empty() => format!("ctx{ctx} ({sym})"),
        _ => format!("ctx{ctx}"),
    }
}

/// The nearest symbol at or below `addr`, from a `(name, address)`
/// table. Ties (aliased symbols at one address) resolve to the
/// lexicographically first name so output is deterministic.
#[must_use]
pub fn nearest_symbol(symbols: &[(String, UWord)], addr: UWord) -> Option<(&str, UWord)> {
    symbols
        .iter()
        .filter(|(_, a)| *a <= addr)
        .max_by(|(na, aa), (nb, ab)| aa.cmp(ab).then(nb.cmp(na)))
        .map(|(n, a)| (n.as_str(), addr - a))
}

/// Render a program point as `sym+0x10`, or bare `0x10` when no symbol
/// covers it. The offset part is omitted when zero: `sym`.
#[must_use]
pub fn pc_span(symbols: &[(String, UWord)], addr: UWord) -> String {
    match nearest_symbol(symbols, addr) {
        Some((sym, 0)) => sym.to_string(),
        Some((sym, off)) => format!("{sym}+{off:#x}"),
        None => format!("{addr:#x}"),
    }
}

/// One wait-for edge line, shared between runtime deadlock reports and
/// the static deadlock lint: `ctx1 (main) waits for ctx2 (peer) [recv
/// on chan 3]`.
#[must_use]
pub fn wait_line(from: &str, to: &str, what: &str) -> String {
    format!("{from} waits for {to} [{what}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_label_with_and_without_symbol() {
        assert_eq!(ctx_label(3, None), "ctx3");
        assert_eq!(ctx_label(3, Some("fan.2")), "ctx3 (fan.2)");
        assert_eq!(ctx_label(0, Some("")), "ctx0");
    }

    #[test]
    fn nearest_symbol_picks_greatest_at_or_below() {
        let syms =
            vec![("main".to_string(), 0u32), ("peer".to_string(), 16), ("tail".to_string(), 64)];
        assert_eq!(nearest_symbol(&syms, 0), Some(("main", 0)));
        assert_eq!(nearest_symbol(&syms, 12), Some(("main", 12)));
        assert_eq!(nearest_symbol(&syms, 16), Some(("peer", 0)));
        assert_eq!(nearest_symbol(&syms, 40), Some(("peer", 24)));
        let empty: Vec<(String, UWord)> = vec![];
        assert_eq!(nearest_symbol(&empty, 8), None);
    }

    #[test]
    fn pc_span_formats() {
        let syms = vec![("main".to_string(), 0u32), ("peer".to_string(), 16)];
        assert_eq!(pc_span(&syms, 0), "main");
        assert_eq!(pc_span(&syms, 8), "main+0x8");
        assert_eq!(pc_span(&syms, 16), "peer");
        let empty: Vec<(String, UWord)> = vec![];
        assert_eq!(pc_span(&empty, 8), "0x8");
    }

    #[test]
    fn wait_line_shape() {
        assert_eq!(
            wait_line("ctx1 (main)", "ctx2 (peer)", "recv on chan 3"),
            "ctx1 (main) waits for ctx2 (peer) [recv on chan 3]"
        );
    }
}
