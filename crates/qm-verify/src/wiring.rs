//! Splice/channel wiring lints over the static fork tree.
//!
//! The pass symbolically executes each context *instance* (every fork
//! site creates one — two `rfork`s of the same label are two instances
//! with distinct channels) tracking which channel each register and
//! queue slot holds, then checks the resulting wiring: receives on
//! channels nobody sends on, channels sent on but never read, channels
//! received in more than one context, and wait-for cycles that are
//! statically guaranteed to deadlock.
//!
//! The deadlock check replays the per-instance send/receive sequences
//! with *buffered* sends (strictly more permissive than the machine's
//! rendezvous semantics) — any context still stuck at that fixpoint is
//! guaranteed stuck under rendezvous too, so the cycle lint is an
//! error, never a false alarm.
//!
//! **Decidability limit**: the pass is sound only when every instance
//! is a statically bounded straight line. Branches, runtime-computed
//! channels or fork targets, and recursive fork chains (how OCCAM
//! loops compile) make splice wiring undecidable pre-execution; any
//! such feature switches the whole pass off rather than risk a false
//! positive (the queue-discipline pass still runs).

use std::collections::{BTreeMap, HashMap};

use qm_isa::asm::Object;
use qm_isa::isa::{Instruction, Opcode, SrcMode, REG_DUMMY};
use qm_isa::{UWord, Word};

use crate::diag::{Code, Diagnostic, Report};
use crate::{names, traps};

const REG_IN_CHAN: u8 = 17;
const REG_OUT_CHAN: u8 = 18;
/// Channel id 0 is the host (always ready on both sides).
const HOST_CHANNEL: Word = 0;
/// Cap on context instances — beyond this the fork tree is treated as
/// statically unbounded and the pass switches off.
const MAX_INSTANCES: usize = 64;
/// Cap on symbolically executed instructions per instance.
const MAX_STEPS: usize = 65536;

/// A statically identified channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum ChanId {
    /// The host channel (sends and receives always succeed).
    Host,
    /// A literal nonzero channel number in the program text.
    Lit(Word),
    /// The in-channel allocated when instance `n` was forked.
    In(usize),
    /// The out-channel allocated when instance `n` was forked
    /// (`rfork`/`rfork_local` only — `ifork` children inherit).
    Out(usize),
    /// A channel allocated by a `chan` trap (allocation order index).
    Fresh(usize),
}

impl ChanId {
    fn describe(self) -> String {
        match self {
            ChanId::Host => "the host channel".into(),
            ChanId::Lit(v) => format!("channel {v}"),
            ChanId::In(n) => format!("the in-channel of ctx{n}"),
            ChanId::Out(n) => format!("the out-channel of ctx{n}"),
            ChanId::Fresh(n) => format!("chan-trap channel #{n}"),
        }
    }
}

/// Abstract value: a known constant, a known channel, or anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sym {
    Top,
    Const(Word),
    Chan(ChanId),
}

impl Sym {
    /// Interpret the value as a channel operand.
    fn as_chan(self) -> Option<ChanId> {
        match self {
            Sym::Const(HOST_CHANNEL) => Some(ChanId::Host),
            Sym::Const(v) => Some(ChanId::Lit(v)),
            Sym::Chan(c) => Some(c),
            Sym::Top => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Send,
    Recv,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    kind: EventKind,
    chan: ChanId,
    pc: UWord,
}

struct Instance {
    entry: UWord,
    /// Entry addresses on the fork chain from the root, including this
    /// instance — the recursion guard.
    ancestry: Vec<UWord>,
    /// Initial in/out channel globals.
    r17: Sym,
    r18: Sym,
    events: Vec<Event>,
}

pub(crate) struct WiringPass<'a> {
    obj: &'a Object,
    symbols: &'a [(String, UWord)],
}

impl<'a> WiringPass<'a> {
    pub(crate) fn new(obj: &'a Object, symbols: &'a [(String, UWord)]) -> Self {
        WiringPass { obj, symbols }
    }

    fn decode_at(&self, addr: UWord) -> Option<(Instruction, UWord)> {
        let base = self.obj.base();
        let end = base + self.obj.size_bytes();
        if addr < base || addr >= end || !(addr - base).is_multiple_of(4) {
            return None;
        }
        let idx = ((addr - base) / 4) as usize;
        let hi = (idx + 3).min(self.obj.words().len());
        #[allow(clippy::cast_possible_truncation)]
        Instruction::decode(&self.obj.words()[idx..hi]).ok().map(|(i, used)| (i, 4 * used as UWord))
    }

    fn ctx_label(&self, inst: usize, entry: UWord) -> String {
        names::ctx_label(inst, Some(&names::pc_span(self.symbols, entry)))
    }

    /// Symbolically execute one instance. Returns `false` when the
    /// instance (and hence the whole pass) is not statically decidable.
    #[allow(clippy::too_many_lines)]
    fn exec_instance(
        &self,
        instances: &mut Vec<Instance>,
        id: usize,
        fresh_chans: &mut usize,
    ) -> bool {
        let mut pc = instances[id].entry;
        let ancestry = instances[id].ancestry.clone();
        // r16..r31 (index n-16); r16 (DUMMY) reads as Top.
        let mut globals = [Sym::Top; 16];
        globals[(REG_IN_CHAN - 16) as usize] = instances[id].r17;
        globals[(REG_OUT_CHAN - 16) as usize] = instances[id].r18;
        let mut slots: BTreeMap<u32, Sym> = BTreeMap::new();
        let mut last_result = Sym::Top;

        let read = |mode: SrcMode, slots: &BTreeMap<u32, Sym>, globals: &[Sym; 16]| match mode {
            SrcMode::Window(n) => slots.get(&u32::from(n)).copied().unwrap_or(Sym::Top),
            SrcMode::Global(n) if n > 16 => globals[(n - 16) as usize],
            SrcMode::Global(_) => Sym::Top,
            SrcMode::Imm(v) => Sym::Const(Word::from(v)),
            SrcMode::ImmWord(v) => Sym::Const(v),
        };

        for _ in 0..MAX_STEPS {
            let Some((instr, size)) = self.decode_at(pc) else {
                return false;
            };
            match instr {
                Instruction::Dup { two, off1, off2, .. } => {
                    slots.insert(u32::from(off1), last_result);
                    if two {
                        slots.insert(u32::from(off2), last_result);
                    }
                    pc += size;
                }
                Instruction::Basic { op, src1, src2, dst1, dst2, qp_inc, .. } => {
                    let a = read(src1, &slots, &globals);
                    let b = read(src2, &slots, &globals);
                    let advance = |slots: &mut BTreeMap<u32, Sym>| {
                        if qp_inc > 0 {
                            let shifted: BTreeMap<u32, Sym> = slots
                                .iter()
                                .filter(|(&k, _)| k >= u32::from(qp_inc))
                                .map(|(&k, &v)| (k - u32::from(qp_inc), v))
                                .collect();
                            *slots = shifted;
                        }
                    };
                    let write = |dst: u8,
                                 v: Sym,
                                 slots: &mut BTreeMap<u32, Sym>,
                                 globals: &mut [Sym; 16]|
                     -> bool {
                        match dst {
                            d if d < 16 => {
                                slots.insert(u32::from(d), v);
                                true
                            }
                            REG_DUMMY => true,
                            d if d < 29 => {
                                globals[(d - 16) as usize] = v;
                                true
                            }
                            _ => false, // pom/qp/pc written: undecidable
                        }
                    };
                    match op {
                        Opcode::Bne | Opcode::Beq => return false,
                        Opcode::Fret | Opcode::Rett => return false,
                        Opcode::Trap | Opcode::Ftrap => {
                            advance(&mut slots);
                            let Sym::Const(entry_no) = a else { return false };
                            match entry_no {
                                traps::END | traps::HALT => return true,
                                traps::NOW => {
                                    if !write(dst1, Sym::Top, &mut slots, &mut globals) {
                                        return false;
                                    }
                                    last_result = Sym::Top;
                                }
                                traps::WAIT => {}
                                traps::CHAN => {
                                    let c = Sym::Chan(ChanId::Fresh(*fresh_chans));
                                    *fresh_chans += 1;
                                    if !write(dst1, c, &mut slots, &mut globals) {
                                        return false;
                                    }
                                    last_result = c;
                                }
                                e if traps::is_fork(e) => {
                                    let Sym::Const(target) = b else { return false };
                                    #[allow(clippy::cast_sign_loss)]
                                    let target = target as UWord;
                                    if ancestry.contains(&target)
                                        || instances.len() >= MAX_INSTANCES
                                    {
                                        // Recursive fork chain (OCCAM
                                        // loop) or unbounded tree.
                                        return false;
                                    }
                                    let child = instances.len();
                                    let c_in = Sym::Chan(ChanId::In(child));
                                    let (c_out, child_out) = if e == traps::IFORK {
                                        (Sym::Top, globals[(REG_OUT_CHAN - 16) as usize])
                                    } else {
                                        let c = Sym::Chan(ChanId::Out(child));
                                        (c, c)
                                    };
                                    let mut child_ancestry = ancestry.clone();
                                    child_ancestry.push(target);
                                    instances.push(Instance {
                                        entry: target,
                                        ancestry: child_ancestry,
                                        r17: c_in,
                                        r18: child_out,
                                        events: Vec::new(),
                                    });
                                    if !write(dst1, c_in, &mut slots, &mut globals) {
                                        return false;
                                    }
                                    if e != traps::IFORK
                                        && !write(dst2, c_out, &mut slots, &mut globals)
                                    {
                                        return false;
                                    }
                                    last_result = c_in;
                                }
                                _ => return false, // unknown kernel entry
                            }
                            pc += size;
                        }
                        Opcode::Send | Opcode::Recv => {
                            advance(&mut slots);
                            let Some(chan) = a.as_chan() else { return false };
                            let kind =
                                if op == Opcode::Send { EventKind::Send } else { EventKind::Recv };
                            instances[id].events.push(Event { kind, chan, pc });
                            if op == Opcode::Recv {
                                last_result = Sym::Top;
                                if !write(dst1, Sym::Top, &mut slots, &mut globals)
                                    || !write(dst2, Sym::Top, &mut slots, &mut globals)
                                {
                                    return false;
                                }
                            }
                            pc += size;
                        }
                        _ => {
                            // ALU / compare / memory.
                            advance(&mut slots);
                            let produces = !matches!(op, Opcode::Store | Opcode::Storb);
                            if produces {
                                // Fold enough arithmetic to track channel
                                // values through the move idiom
                                // (`plus c,#0`) and constant math.
                                let v = match (op, a, b) {
                                    (_, Sym::Const(x), Sym::Const(y)) => {
                                        op.alu(x, y).map_or(Sym::Top, Sym::Const)
                                    }
                                    (Opcode::Plus | Opcode::Or | Opcode::Xor, s, Sym::Const(0))
                                    | (Opcode::Plus | Opcode::Or | Opcode::Xor, Sym::Const(0), s) => {
                                        s
                                    }
                                    _ => Sym::Top,
                                };
                                if !write(dst1, v, &mut slots, &mut globals)
                                    || !write(dst2, v, &mut slots, &mut globals)
                                {
                                    return false;
                                }
                                last_result = v;
                            }
                            pc += size;
                        }
                    }
                }
            }
        }
        false // step cap exceeded
    }

    pub(crate) fn run(&self, entry: UWord, report: &mut Report) {
        let mut instances = vec![Instance {
            entry,
            ancestry: vec![entry],
            r17: Sym::Chan(ChanId::Host),
            r18: Sym::Chan(ChanId::Host),
            events: Vec::new(),
        }];
        let mut fresh = 0usize;
        let mut i = 0;
        while i < instances.len() {
            if !self.exec_instance(&mut instances, i, &mut fresh) {
                return; // not statically decidable: no wiring lints
            }
            i += 1;
        }

        // Endpoint lints.
        let mut senders: HashMap<ChanId, Vec<(usize, UWord)>> = HashMap::new();
        let mut receivers: HashMap<ChanId, Vec<(usize, UWord)>> = HashMap::new();
        for (id, inst) in instances.iter().enumerate() {
            for ev in &inst.events {
                if ev.chan == ChanId::Host {
                    continue;
                }
                match ev.kind {
                    EventKind::Send => senders.entry(ev.chan).or_default().push((id, ev.pc)),
                    EventKind::Recv => receivers.entry(ev.chan).or_default().push((id, ev.pc)),
                }
            }
        }
        for (&chan, rs) in &receivers {
            if !senders.contains_key(&chan) {
                let &(id, pc) = &rs[0];
                report.push(
                    Diagnostic::new(
                        Code::DanglingChannel,
                        format!("recv on {}, which no context ever sends on", chan.describe()),
                    )
                    .in_ctx(self.ctx_label(id, instances[id].entry))
                    .at_pc(pc)
                    .at_line(self.obj.line_for(pc)),
                );
            }
            let mut ctxs: Vec<usize> = rs.iter().map(|&(id, _)| id).collect();
            ctxs.sort_unstable();
            ctxs.dedup();
            if ctxs.len() > 1 {
                let names: Vec<String> =
                    ctxs.iter().map(|&c| self.ctx_label(c, instances[c].entry)).collect();
                report.push(
                    Diagnostic::new(
                        Code::DoublyConnectedChannel,
                        format!("{} is received in {} contexts", chan.describe(), ctxs.len()),
                    )
                    .in_ctx(self.ctx_label(ctxs[0], instances[ctxs[0]].entry))
                    .at_pc(rs[0].1)
                    .at_line(self.obj.line_for(rs[0].1))
                    .note(format!("receivers: {}", names.join(", "))),
                );
            }
        }
        for (&chan, ss) in &senders {
            if !receivers.contains_key(&chan) {
                let &(id, pc) = &ss[0];
                report.push(
                    Diagnostic::new(
                        Code::ChannelNeverRead,
                        format!("send on {}, which no context ever receives from", chan.describe()),
                    )
                    .in_ctx(self.ctx_label(id, instances[id].entry))
                    .at_pc(pc)
                    .at_line(self.obj.line_for(pc)),
                );
            }
        }

        self.deadlock_lint(&instances, report);
    }

    /// Replay the send/receive sequences with buffered sends; anything
    /// stuck at the fixpoint is a guaranteed runtime deadlock.
    fn deadlock_lint(&self, instances: &[Instance], report: &mut Report) {
        let n = instances.len();
        let mut idx = vec![0usize; n];
        let mut buf: HashMap<ChanId, usize> = HashMap::new();
        loop {
            let mut progress = false;
            for (i, inst) in instances.iter().enumerate() {
                while idx[i] < inst.events.len() {
                    let ev = inst.events[idx[i]];
                    let ok = match (ev.kind, ev.chan) {
                        (_, ChanId::Host) => true,
                        (EventKind::Send, c) => {
                            *buf.entry(c).or_insert(0) += 1;
                            true
                        }
                        (EventKind::Recv, c) => match buf.get_mut(&c) {
                            Some(k) if *k > 0 => {
                                *k -= 1;
                                true
                            }
                            _ => false,
                        },
                    };
                    if ok {
                        idx[i] += 1;
                        progress = true;
                    } else {
                        break;
                    }
                }
            }
            if !progress {
                break;
            }
        }

        let stuck: Vec<usize> = (0..n).filter(|&i| idx[i] < instances[i].events.len()).collect();
        if stuck.is_empty() {
            return;
        }
        // Wait-for edges: i → j when j still has a future send on the
        // channel i is stuck receiving on.
        let waits_on = |i: usize| instances[i].events[idx[i]].chan;
        let mut edges: HashMap<usize, Vec<usize>> = HashMap::new();
        for &i in &stuck {
            let c = waits_on(i);
            let mut future_senders: Vec<usize> = Vec::new();
            for &j in &stuck {
                let has_future_send = instances[j].events[idx[j]..]
                    .iter()
                    .any(|e| e.kind == EventKind::Send && e.chan == c);
                if has_future_send {
                    future_senders.push(j);
                }
            }
            if future_senders.is_empty() {
                let pc = instances[i].events[idx[i]].pc;
                report.push(
                    Diagnostic::new(
                        Code::DanglingChannel,
                        format!(
                            "recv on {} can never be satisfied: no remaining sender",
                            waits_on(i).describe()
                        ),
                    )
                    .in_ctx(self.ctx_label(i, instances[i].entry))
                    .at_pc(pc)
                    .at_line(self.obj.line_for(pc)),
                );
            }
            edges.insert(i, future_senders);
        }

        // Any cycle in the wait-for graph is a guaranteed deadlock.
        if let Some(cycle) = find_cycle(&stuck, &edges) {
            let mut d = Diagnostic::new(
                Code::StaticDeadlock,
                format!("wait-for cycle: {} context(s) statically deadlocked", cycle.len()),
            )
            .in_ctx(self.ctx_label(cycle[0], instances[cycle[0]].entry))
            .at_pc(instances[cycle[0]].events[idx[cycle[0]]].pc)
            .at_line(self.obj.line_for(instances[cycle[0]].events[idx[cycle[0]]].pc));
            for (k, &i) in cycle.iter().enumerate() {
                let j = cycle[(k + 1) % cycle.len()];
                d = d.note(names::wait_line(
                    &self.ctx_label(i, instances[i].entry),
                    &self.ctx_label(j, instances[j].entry),
                    &format!("recv on {}", waits_on(i).describe()),
                ));
            }
            report.push(d);
        }
    }
}

/// First cycle found in the wait-for graph, as a node list.
fn find_cycle(nodes: &[usize], edges: &HashMap<usize, Vec<usize>>) -> Option<Vec<usize>> {
    // Iterative DFS with a path stack; graphs here are tiny.
    for &start in nodes {
        let mut path: Vec<usize> = vec![start];
        let mut iters: Vec<usize> = vec![0];
        while let (Some(&node), Some(it)) = (path.last(), iters.last_mut()) {
            let succs = edges.get(&node).map_or(&[][..], Vec::as_slice);
            if *it >= succs.len() {
                path.pop();
                iters.pop();
                continue;
            }
            let next = succs[*it];
            *it += 1;
            if let Some(pos) = path.iter().position(|&p| p == next) {
                return Some(path[pos..].to_vec());
            }
            if path.len() < nodes.len() {
                path.push(next);
                iters.push(0);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::diag::Code;
    use crate::{verify_object, VerifyOptions};
    use qm_isa::asm::assemble;

    fn verify(src: &str) -> crate::Report {
        verify_object(&assemble(src).unwrap(), &VerifyOptions::default())
    }

    #[test]
    fn crossed_rendezvous_is_a_static_deadlock() {
        // The runtime fixture from tests/deadlock_report.rs: parent
        // receives from the child's *out* channel before sending the
        // value the child is waiting for on its *in* channel.
        let r = verify(
            "main:   trap #0,#peer :r0,r1\n\
                     recv r1,#0 :r2\n\
                     send r0,#1\n\
                     trap #2,#0\n\
             peer:   recv r17,#0 :r0\n\
                     send+1 r18,r0\n\
                     trap #2,#0\n",
        );
        let d = r.diags.iter().find(|d| d.code == Code::StaticDeadlock).expect("deadlock lint");
        assert!(d.notes.iter().any(|l| l.contains("waits for")), "{}", r.render());
        assert!(
            d.notes.iter().any(|l| l.contains("ctx0 (main)")),
            "wait lines use canonical labels: {}",
            r.render()
        );
    }

    #[test]
    fn pipelined_fork_is_clean() {
        let r = verify(
            "main:   trap #0,#stage :r0,r1\n\
                     send r0,#21\n\
                     recv r1,#0 :r2\n\
                     send+1 #0,r2\n\
                     trap #2,#0\n\
             stage:  recv r17,#0 :r0\n\
                     mul+1 r0,#2 :r0\n\
                     send+1 r18,r0\n\
                     trap #2,#0\n",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn chan_trap_channel_without_sender_is_dangling() {
        let r = verify(
            "main: trap #6,#0 :r19\n\
                   recv r19,#0 :r0\n\
                   trap #2,#0\n",
        );
        assert!(r.diags.iter().any(|d| d.code == Code::DanglingChannel), "{}", r.render());
    }

    #[test]
    fn send_without_receiver_warns() {
        let r = verify(
            "main: trap #6,#0 :r19\n\
                   send r19,#7\n\
                   trap #2,#0\n",
        );
        assert!(r.diags.iter().any(|d| d.code == Code::ChannelNeverRead), "{}", r.render());
        assert!(!r.has_errors(), "{}", r.render());
    }

    #[test]
    fn branchy_programs_suppress_wiring_lints() {
        // The recv on a chan-trap channel would be dangling, but the
        // branch makes the splice undecidable — no wiring lint, only
        // queue-pass findings.
        let r = verify(
            "main: trap #6,#0 :r19\n\
                   lt #1,#2 :r0\n\
                   bne r0,@skip\n\
             skip: recv r19,#0 :r1\n\
                   trap #2,#0\n",
        );
        assert!(!r.diags.iter().any(|d| d.code == Code::DanglingChannel), "{}", r.render());
    }

    #[test]
    fn ifork_child_inherits_out_channel() {
        // parent → ifork child; the child sends on the inherited host
        // out-channel: nothing dangles.
        let r = verify(
            "main:  trap #1,#cont :r0\n\
                    send r0,#5\n\
                    trap #2,#0\n\
             cont:  recv r17,#0 :r0\n\
                    send+1 r18,r0\n\
                    trap #2,#0\n",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn doubly_connected_channel_warns() {
        // Both children receive on the same chan-trap channel.
        let r = verify(
            "main: trap #6,#0 :r19\n\
                   trap #0,#kid :r0,r1\n\
                   trap #0,#kid :r2,r3\n\
                   send r19,#1\n\
                   send r19,#2\n\
                   send r0,#0\n\
                   send r2,#0\n\
                   recv r1,#0 :r4\n\
                   recv+1 r3,#0 :r4\n\
                   trap #2,#0\n\
             kid:  trap #6,#0 :r19\n\
                   recv r17,#0 :r0\n\
                   send+1 r18,r0\n\
                   trap #2,#0\n",
        );
        // NOTE: each kid's r19 chan-trap overwrites its own global copy;
        // the shared channel is main's r19, which the kids cannot see —
        // so this program instead dangles. Keep it simple: check the
        // multi-receiver lint directly with literal channels.
        let _ = r;
        let r = verify(
            "main: trap #0,#kid :r0,r1\n\
                   trap #0,#kid :r2,r3\n\
                   send #9,#1\n\
                   send r0,#0\n\
                   send r2,#0\n\
                   recv r1,#0 :r4\n\
                   recv+1 r3,#0 :r4\n\
                   trap #2,#0\n\
             kid:  recv #9,#0 :r0\n\
                   recv+1 r17,#0 :r1\n\
                   send+1 r18,r0\n\
                   trap #2,#0\n",
        );
        assert!(r.diags.iter().any(|d| d.code == Code::DoublyConnectedChannel), "{}", r.render());
    }
}
