//! Diagnostic codes, records and report rendering.
//!
//! Every finding of the verifier is a [`Diagnostic`] with a stable
//! [`Code`], a severity, and an optional program point (context label,
//! PC, source line). A [`Report`] collects the findings of one run and
//! renders them either rustc-style for humans or as JSON for tools.

use qm_core::json::{Envelope, JsonBuf};
use qm_isa::UWord;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A lint: suspicious but not provably fatal. Reported, never
    /// rejected.
    Warning,
    /// A proved queue-discipline violation (or a statically guaranteed
    /// runtime failure). Rejected under `Strict`.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// `QV00xx` — abstract queue-state dataflow (per-context), `QV01xx` —
/// control-flow/decoding, `QV02xx` — splice/channel wiring, `QV03xx` —
/// valid-sequence checking against a DFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the variants are documented by `description`
pub enum Code {
    QueueUnderflow,
    UndefinedWindowRead,
    DupOutsideWindow,
    JoinDepthMismatch,
    DupWithoutResult,
    SlotOverwrite,
    TrapArityMismatch,
    Unanalyzable,
    BadBranchTarget,
    Undecodable,
    RunsOffEnd,
    BadForkTarget,
    DanglingChannel,
    StaticDeadlock,
    ChannelNeverRead,
    DoublyConnectedChannel,
    BadSequence,
    OffsetMismatch,
}

impl Code {
    /// The stable code string (`QV0001` …).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::QueueUnderflow => "QV0001",
            Code::UndefinedWindowRead => "QV0002",
            Code::DupOutsideWindow => "QV0003",
            Code::JoinDepthMismatch => "QV0004",
            Code::DupWithoutResult => "QV0005",
            Code::SlotOverwrite => "QV0006",
            Code::TrapArityMismatch => "QV0007",
            Code::Unanalyzable => "QV0101",
            Code::BadBranchTarget => "QV0102",
            Code::Undecodable => "QV0103",
            Code::RunsOffEnd => "QV0104",
            Code::BadForkTarget => "QV0105",
            Code::DanglingChannel => "QV0201",
            Code::StaticDeadlock => "QV0202",
            Code::ChannelNeverRead => "QV0203",
            Code::DoublyConnectedChannel => "QV0204",
            Code::BadSequence => "QV0301",
            Code::OffsetMismatch => "QV0302",
        }
    }

    /// Default severity of the code.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Code::QueueUnderflow
            | Code::UndefinedWindowRead
            | Code::DupOutsideWindow
            | Code::TrapArityMismatch
            | Code::BadBranchTarget
            | Code::Undecodable
            | Code::RunsOffEnd
            | Code::BadForkTarget
            | Code::DanglingChannel
            | Code::StaticDeadlock
            | Code::BadSequence
            | Code::OffsetMismatch => Severity::Error,
            Code::JoinDepthMismatch
            | Code::DupWithoutResult
            | Code::SlotOverwrite
            | Code::Unanalyzable
            | Code::ChannelNeverRead
            | Code::DoublyConnectedChannel => Severity::Warning,
        }
    }

    /// One-line description of what the code means.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Code::QueueUnderflow => "queue underflow: consuming slots never produced",
            Code::UndefinedWindowRead => "read of a queue slot with no value on some path",
            Code::DupOutsideWindow => "dup offset reaches outside the queue page",
            Code::JoinDepthMismatch => "paths reach a join with different live queue slots",
            Code::DupWithoutResult => "dup with no preceding value-producing instruction",
            Code::SlotOverwrite => "write to a queue slot already holding a live value",
            Code::TrapArityMismatch => "trap destination the kernel entry never writes",
            Code::Unanalyzable => "control flow or queue pointer escapes static analysis",
            Code::BadBranchTarget => "branch target outside the code or misaligned",
            Code::Undecodable => "execution reaches an undecodable word",
            Code::RunsOffEnd => "execution can run off the end of the code",
            Code::BadForkTarget => "fork target is not a code entry point",
            Code::DanglingChannel => "receive on a channel no context ever sends on",
            Code::StaticDeadlock => "wait-for cycle: contexts statically guaranteed to deadlock",
            Code::ChannelNeverRead => "channel is sent on but never received from",
            Code::DoublyConnectedChannel => "channel receives in more than one context",
            Code::BadSequence => "instruction order is not a valid sequence for the DFG",
            Code::OffsetMismatch => "operand offsets disagree with predecessor positions",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (defaults to [`Code::severity`]).
    pub severity: Severity,
    /// Label of the context the finding belongs to (`main`, `fan.2`, …).
    pub ctx: Option<String>,
    /// Byte address of the offending program point.
    pub pc: Option<UWord>,
    /// 1-based source line (when the object carries assembler metadata).
    pub line: Option<usize>,
    /// Human-readable message.
    pub message: String,
    /// Extra note lines (wait-for edges, joined paths, …).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no location.
    #[must_use]
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            ctx: None,
            pc: None,
            line: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attach a context label.
    #[must_use]
    pub fn in_ctx(mut self, ctx: impl Into<String>) -> Self {
        self.ctx = Some(ctx.into());
        self
    }

    /// Attach a program counter.
    #[must_use]
    pub fn at_pc(mut self, pc: UWord) -> Self {
        self.pc = Some(pc);
        self
    }

    /// Attach a source line.
    #[must_use]
    pub fn at_line(mut self, line: Option<usize>) -> Self {
        self.line = line;
        self
    }

    /// Append a note line.
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Render rustc-style:
    ///
    /// ```text
    /// error[QV0001]: queue underflow: consuming 2 slots, 1 live
    ///   --> main+0x8 (line 3)
    ///   = note: …
    /// ```
    #[must_use]
    pub fn render(&self, symbols: &[(String, UWord)]) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        let mut loc = String::new();
        if let Some(pc) = self.pc {
            loc = crate::names::pc_span(symbols, pc);
            if let Some(line) = self.line {
                loc.push_str(&format!(" (line {line})"));
            }
        }
        if let Some(ctx) = &self.ctx {
            if loc.is_empty() {
                loc = format!("context {ctx}");
            } else {
                loc.push_str(&format!(", context {ctx}"));
            }
        }
        if !loc.is_empty() {
            out.push_str(&format!("\n  --> {loc}"));
        }
        for n in &self.notes {
            out.push_str(&format!("\n  = note: {n}"));
        }
        out
    }

    fn render_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.str_field("code", &self.code.to_string());
        j.str_field("severity", &self.severity.to_string());
        j.str_field("message", &self.message);
        if let Some(ctx) = &self.ctx {
            j.str_field("ctx", ctx);
        }
        if let Some(pc) = self.pc {
            j.u64_field("pc", u64::from(pc));
        }
        if let Some(line) = self.line {
            j.u64_field("line", line as u64);
        }
        if !self.notes.is_empty() {
            j.key("notes");
            j.begin_arr();
            for n in &self.notes {
                j.str_val(n);
            }
            j.end_arr();
        }
        j.end_obj();
    }
}

/// The findings of one verifier run.
#[must_use = "a verification report carries errors that should be checked"]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in program order.
    pub diags: Vec<Diagnostic>,
    /// Symbol table of the verified object, for span rendering
    /// (`(name, address)` pairs, sorted by address).
    pub symbols: Vec<(String, UWord)>,
}

impl Report {
    /// An empty report with a symbol table for rendering.
    pub fn with_symbols(symbols: Vec<(String, UWord)>) -> Self {
        Report { diags: Vec::new(), symbols }
    }

    /// Add a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Merge another report's findings (keeping this report's symbols
    /// when the other has none).
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
        if self.symbols.is_empty() {
            self.symbols = other.symbols;
        }
    }

    /// True when nothing was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// True when at least one error-severity finding exists (the
    /// `Strict` rejection condition).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Sort findings by (context, pc, code) for stable output.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            (&a.ctx, a.pc, a.code, &a.message).cmp(&(&b.ctx, b.pc, b.code, &b.message))
        });
    }

    /// Render all findings rustc-style, one block per finding.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&d.render(&self.symbols));
            out.push('\n');
        }
        out
    }

    /// Render as a bare JSON array of diagnostic objects (the `diags`
    /// body of [`to_json`](Self::to_json), without the envelope).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut j = JsonBuf::new();
        self.write_diags(&mut j);
        j.finish()
    }

    fn write_diags(&self, j: &mut JsonBuf) {
        j.begin_arr();
        for d in &self.diags {
            d.render_json(j);
        }
        j.end_arr();
    }

    /// Serialise as a `qm-api/v1` `verify_report` envelope (the
    /// machine-readable mode of the `qm-verify` bin, and the verify
    /// section of `qm-serve` job results): overall verdict, severity
    /// counts and the full diagnostic list.
    #[must_use]
    pub fn to_json(&self) -> String {
        Envelope::render("verify_report", |j| self.write_envelope_body(j))
    }

    /// Write the `data` body of the `verify_report` envelope into an
    /// open object (shared with `qm-serve`, which embeds it in job
    /// results).
    pub fn write_envelope_body(&self, j: &mut JsonBuf) {
        j.bool_field("clean", self.is_clean());
        j.u64_field("errors", self.errors().count() as u64);
        j.u64_field("warnings", self.warnings().count() as u64);
        self.fast_path_certificate().write_field(j);
        j.key("diags");
        self.write_diags(j);
    }

    /// One-line summary: `2 error(s), 1 warning(s)`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!("{} error(s), {} warning(s)", self.errors().count(), self.warnings().count())
    }

    /// The machine-readable fast-path certificate derived from this
    /// report: whether a consumer may run the program on a pre-decoded
    /// fast path that skips the per-step checks these passes prove
    /// statically. `qm-sim`'s translated backend
    /// (`Backend::Translated`) demands an eligible certificate, which a
    /// `Strict` build implies (Strict rejects any finding at all). The
    /// certificate also rides in the `verify_report` envelope as the
    /// `fast_path` field.
    #[must_use]
    pub fn fast_path_certificate(&self) -> FastPathCertificate {
        FastPathCertificate {
            eligible: self.is_clean(),
            blocking: self.diags.len(),
            passes: FAST_PATH_PASSES,
        }
    }
}

/// Verifier passes whose clean result a [`FastPathCertificate`] rests
/// on (the complete pass list of [`verify_object_at`](crate::verify_object_at)).
pub const FAST_PATH_PASSES: &[&str] = &["queue", "wiring"];

/// The certificate a clean verification confers: the program's queue
/// discipline and channel wiring hold on every statically reachable
/// path, so an execution backend may cache decodes and elide the
/// per-step re-checks those properties would otherwise require. See
/// [`Report::fast_path_certificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastPathCertificate {
    /// The program may run on a verified fast path.
    pub eligible: bool,
    /// Findings standing in the way (0 when eligible).
    pub blocking: usize,
    /// The passes the certificate rests on.
    pub passes: &'static [&'static str],
}

impl FastPathCertificate {
    /// Write the certificate as the `fast_path` object field of an open
    /// JSON object.
    pub fn write_field(&self, j: &mut JsonBuf) {
        j.key("fast_path");
        j.begin_obj();
        j.bool_field("eligible", self.eligible);
        j.u64_field("blocking", self.blocking as u64);
        j.key("passes");
        j.begin_arr();
        for p in self.passes {
            j.str_val(p);
        }
        j.end_arr();
        j.end_obj();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            Code::QueueUnderflow,
            Code::UndefinedWindowRead,
            Code::DupOutsideWindow,
            Code::JoinDepthMismatch,
            Code::DupWithoutResult,
            Code::SlotOverwrite,
            Code::TrapArityMismatch,
            Code::Unanalyzable,
            Code::BadBranchTarget,
            Code::Undecodable,
            Code::RunsOffEnd,
            Code::BadForkTarget,
            Code::DanglingChannel,
            Code::StaticDeadlock,
            Code::ChannelNeverRead,
            Code::DoublyConnectedChannel,
            Code::BadSequence,
            Code::OffsetMismatch,
        ];
        let strs: std::collections::BTreeSet<&str> = all.iter().map(|c| c.as_str()).collect();
        assert_eq!(strs.len(), all.len(), "codes collide");
        assert_eq!(Code::QueueUnderflow.as_str(), "QV0001");
    }

    #[test]
    fn render_carries_code_span_and_notes() {
        let syms = vec![("main".to_string(), 0u32)];
        let d = Diagnostic::new(Code::QueueUnderflow, "consuming 2 slots, 1 live")
            .in_ctx("main")
            .at_pc(8)
            .at_line(Some(3))
            .note("produced by plus at 0x0");
        let text = d.render(&syms);
        assert!(text.starts_with("error[QV0001]:"), "{text}");
        assert!(text.contains("main+0x8"), "{text}");
        assert!(text.contains("(line 3)"), "{text}");
        assert!(text.contains("note: produced"), "{text}");
    }

    #[test]
    fn json_mode_is_parseable_shape() {
        let mut r = Report::default();
        r.push(Diagnostic::new(Code::DanglingChannel, "say \"hi\"").at_pc(4));
        let json = r.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"code\":\"QV0201\""), "{json}");
        assert!(json.contains("say \\\"hi\\\""), "{json}");
        let envelope = r.to_json();
        assert!(
            envelope.starts_with("{\"schema\":\"qm-api/v1\",\"kind\":\"verify_report\""),
            "{envelope}"
        );
        assert!(envelope.contains("\"clean\":false"), "{envelope}");
        assert!(envelope.contains("\"errors\":1"), "{envelope}");
        assert!(envelope.contains(&format!("\"diags\":{json}")), "{envelope}");
        qm_core::json::parse(&envelope).expect("envelope is valid JSON");
    }

    #[test]
    fn fast_path_certificate_follows_cleanliness() {
        let clean = Report::default();
        let cert = clean.fast_path_certificate();
        assert!(cert.eligible);
        assert_eq!(cert.blocking, 0);
        assert_eq!(cert.passes, FAST_PATH_PASSES);
        assert!(clean.to_json().contains(
            "\"fast_path\":{\"eligible\":true,\"blocking\":0,\"passes\":[\"queue\",\"wiring\"]}"
        ));

        let mut dirty = Report::default();
        dirty.push(Diagnostic::new(Code::SlotOverwrite, "w"));
        let cert = dirty.fast_path_certificate();
        assert!(!cert.eligible, "warnings block the fast path too");
        assert_eq!(cert.blocking, 1);
        assert!(dirty.to_json().contains("\"fast_path\":{\"eligible\":false"));
    }

    #[test]
    fn report_partitions_by_severity() {
        let mut r = Report::default();
        r.push(Diagnostic::new(Code::QueueUnderflow, "e"));
        r.push(Diagnostic::new(Code::SlotOverwrite, "w"));
        assert!(r.has_errors());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        assert_eq!(r.summary(), "1 error(s), 1 warning(s)");
    }
}
