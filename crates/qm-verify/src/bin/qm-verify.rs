//! Static queue-discipline verifier CLI.
//!
//! Usage: `qm-verify [--strict] [--json] [--page-words <n>]
//! [--entry <symbol>] <file>...`
//!
//! Each file is loaded by extension — `.s`/`.asm` is assembled,
//! `.occ`/`.occam` is compiled with the bundled OCCAM compiler — and the
//! resulting object code is verified: abstract queue-state dataflow over
//! every statically reachable context, then channel-wiring lints.
//! Diagnostics print rustc-style with program-point spans (`--json`
//! switches to one `qm-api/v1` `verify_report` envelope per file —
//! the same wire format `qm-serve` returns; see `docs/API.md`).
//!
//! Exit status: 0 when every file is accepted, 1 when any diagnostic of
//! error severity is found (`--strict` also rejects warnings), 2 on
//! usage, I/O, assembly, or compile errors.

use std::process::exit;

use qm_verify::{verify_object, verify_object_at, Report, VerifyOptions};

struct Args {
    strict: bool,
    json: bool,
    opts: VerifyOptions,
    entry: Option<String>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        strict: false,
        json: false,
        opts: VerifyOptions::default(),
        entry: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict" => args.strict = true,
            "--json" => args.json = true,
            "--page-words" => {
                let v = it.next().ok_or("--page-words needs a value")?;
                args.opts.page_words =
                    v.parse().map_err(|_| format!("bad --page-words value `{v}`"))?;
            }
            "--entry" => args.entry = Some(it.next().ok_or("--entry needs a symbol")?.to_string()),
            "--help" | "-h" => {
                println!(
                    "usage: qm-verify [--strict] [--json] [--page-words <n>] \
                     [--entry <symbol>] <file>..."
                );
                exit(0);
            }
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(args)
}

/// Load one input file into object code, by extension.
fn load(path: &str) -> Result<qm_isa::asm::Object, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lower = path.to_ascii_lowercase();
    if lower.ends_with(".occ") || lower.ends_with(".occam") {
        qm_occam::compile(&src, &qm_occam::Options::default())
            .map(|c| c.object)
            .map_err(|e| format!("{path}: {e}"))
    } else if lower.ends_with(".s") || lower.ends_with(".asm") {
        qm_isa::asm::assemble(&src).map_err(|e| format!("{path}: {e}"))
    } else {
        Err(format!("{path}: unknown extension (expected .s, .asm, .occ, or .occam)"))
    }
}

fn main() {
    let args = parse_args().unwrap_or_else(|msg| {
        eprintln!(
            "usage: qm-verify [--strict] [--json] [--page-words <n>] [--entry <symbol>] <file>..."
        );
        eprintln!("{msg}");
        exit(2);
    });

    let mut rejected = false;
    for path in &args.files {
        let obj = load(path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(2);
        });
        let report: Report = match &args.entry {
            Some(sym) => {
                let Some(entry) = obj.symbol(sym) else {
                    eprintln!("error: {path}: no symbol `{sym}`");
                    exit(2);
                };
                verify_object_at(&obj, entry, &args.opts)
            }
            None => verify_object(&obj, &args.opts),
        };
        if args.json {
            println!("{}", report.to_json());
        } else if !report.diags.is_empty() {
            print!("{}", report.render());
        }
        let reject = report.has_errors() || (args.strict && !report.is_clean());
        rejected |= reject;
        if !args.json {
            println!("{path}: {} — {}", report.summary(), if reject { "rejected" } else { "ok" });
        }
    }
    exit(i32::from(rejected));
}
