//! Kernel trap ABI, mirrored from `qm-sim`'s kernel.
//!
//! The verifier sits *below* `qm-sim` in the dependency graph (the
//! simulator calls the verifier, not the other way around), so the
//! kernel entry numbers are mirrored here rather than imported. They are
//! part of the frozen trap ABI the assembler syntax exposes (`trap
//! #0,#label`), and `qm-sim` pins them with tests.

use qm_isa::Word;

/// Recursive fork: fresh in/out channels into `dst1`/`dst2`.
pub const RFORK: Word = 0;
/// Iterative fork: fresh in channel into `dst1`; the child inherits the
/// caller's out channel. `dst2` is never written.
pub const IFORK: Word = 1;
/// Terminate the calling context. No results.
pub const END: Word = 2;
/// Halt the whole system. No results.
pub const HALT: Word = 3;
/// Read the cycle clock into `dst1`.
pub const NOW: Word = 4;
/// Suspend until the clock reaches `arg`. No results.
pub const WAIT: Word = 5;
/// Allocate a fresh channel id into `dst1`.
pub const CHAN: Word = 6;
/// Recursive fork pinned to the calling PE: like [`RFORK`], fresh
/// in/out channels into `dst1`/`dst2`.
pub const RFORK_LOCAL: Word = 7;

/// True for the entries that create a child context from a code address
/// in `arg`.
#[must_use]
pub fn is_fork(entry: Word) -> bool {
    matches!(entry, RFORK | IFORK | RFORK_LOCAL)
}

/// How many destination registers the kernel writes for `entry`, or
/// `None` when the entry number is not part of the ABI.
#[must_use]
pub fn result_count(entry: Word) -> Option<u8> {
    match entry {
        RFORK | RFORK_LOCAL => Some(2),
        IFORK | NOW | CHAN => Some(1),
        END | HALT | WAIT => Some(0),
        _ => None,
    }
}

/// Human-readable entry name (matches `qm-sim`'s kernel naming).
#[must_use]
pub fn name(entry: Word) -> &'static str {
    match entry {
        RFORK => "rfork",
        IFORK => "ifork",
        END => "end",
        HALT => "halt",
        NOW => "now",
        WAIT => "wait",
        CHAN => "chan",
        RFORK_LOCAL => "rfork_local",
        _ => "?",
    }
}
