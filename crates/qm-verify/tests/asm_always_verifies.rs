//! Pipeline property: every program produced by the repo's own
//! scheduler + §3.6 construction + reference lowering + assembler
//! passes the static verifier under `Strict` (no findings at all), and
//! its instruction order is a valid sequence for the source DFG.
//!
//! The generator builds random acyclic data-flow graphs (folded to a
//! single sink), linearises them with `schedule_by` under random
//! per-operator priorities, and drives the full chain:
//!
//! `Dag` → `schedule_by` → `to_indexed_program` → `lower` → `assemble`
//! → `verify_object` / `sequence::check_indexed`.

use proptest::prelude::*;

use qm_core::dfg::Dag;
use qm_core::expr::Op;
use qm_core::indexed::table_3_4_program;
use qm_core::Word;
use qm_verify::lower::{lower, lower_and_assemble};
use qm_verify::sequence::check_indexed;
use qm_verify::{verify_object, VerifyOptions};

/// Raw node spec: (kind selector, literal byte, two input selectors).
type Spec = (u8, i8, usize, usize);

const FETCH_NAMES: [&str; 3] = ["a", "b", "c"];

/// Build a DAG from raw specs; inputs always point at earlier nodes so
/// the graph is acyclic by construction, and trailing `Add` nodes fold
/// every sink into one (the shape `to_indexed_program` requires).
fn build_dag(specs: &[Spec]) -> Dag<Op> {
    let mut dag: Dag<Op> = Dag::new();
    for &(kind, lit, x, y) in specs {
        let n = dag.len();
        match kind {
            0 => {
                dag.add_node(Op::Literal(Word::from(lit)), &[]);
            }
            1 => {
                let name = FETCH_NAMES[lit.unsigned_abs() as usize % FETCH_NAMES.len()];
                dag.add_node(Op::Fetch(name.to_string()), &[]);
            }
            2 if n > 0 => {
                let op = if lit % 2 == 0 { Op::Neg } else { Op::Not };
                dag.add_node(op, &[x % n]);
            }
            _ if dag.len() > 1 => {
                let op = match lit.rem_euclid(3) {
                    0 => Op::Add,
                    1 => Op::Sub,
                    _ => Op::Mul,
                };
                let n = dag.len();
                dag.add_node(op, &[x % n, y % n]);
            }
            _ => {
                dag.add_node(Op::Literal(1), &[]);
            }
        }
    }
    loop {
        let sinks: Vec<usize> = dag.node_ids().filter(|&v| dag.succs(v).is_empty()).collect();
        if sinks.len() <= 1 {
            break;
        }
        dag.add_node(Op::Add, &[sinks[0], sinks[1]]);
    }
    dag
}

/// Priority class of an operator, indexing the random weight table so
/// different weight draws explore different valid linearisations.
fn op_class(op: &Op) -> usize {
    match op {
        Op::Literal(_) => 0,
        Op::Fetch(_) => 1,
        Op::Neg => 2,
        Op::Not => 3,
        Op::Add => 4,
        Op::Sub => 5,
        Op::Mul => 6,
        Op::Div => 7,
    }
}

fn env(name: &str) -> Word {
    match name {
        "a" => 3,
        "b" => -2,
        _ => 7,
    }
}

/// Run the whole pipeline for one DAG + weight table; panics (via
/// assert) on any violation. Shared by the property and the pinned
/// regression cases.
fn check_pipeline(dag: &Dag<Op>, weights: &[i32; 8]) {
    let order = dag.schedule_by(|op| weights[op_class(op)]);
    assert!(dag.respects_partial_order(&order), "schedule_by must respect pi_G");

    let program = dag.to_indexed_program(&order).expect("single-sink DAG lowers");
    let seq = check_indexed(dag, &order, &program);
    assert!(!seq.has_errors(), "valid-sequence check: {}", seq.render());

    // The indexed program computes the same value the graph does.
    let want = dag.evaluate(&env).expect("no division in generated ops");
    let got = program.evaluate(&env).expect("indexed evaluation succeeds");
    assert_eq!(want, got, "indexed program computes the graph's value\n{program}");

    let src = lower(&program).expect("offsets fit the dup range");
    let obj = lower_and_assemble(&program).expect("lowered program assembles");
    let report = verify_object(&obj, &VerifyOptions::default());
    assert!(report.is_clean(), "Strict verification of:\n{src}\n{}", report.render());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn scheduler_assembler_pipeline_always_verifies(
        specs in prop::collection::vec(
            (0u8..4, any::<i8>(), any::<usize>(), any::<usize>()),
            1..32,
        ),
        raw_weights in prop::collection::vec(0i32..16, 8),
    ) {
        let dag = build_dag(&specs);
        let mut weights = [0i32; 8];
        weights.copy_from_slice(&raw_weights);
        check_pipeline(&dag, &weights);
    }
}

// Pinned seeds: deterministic shapes that once exercised interesting
// corners (wide fanout through dup chains, unary chains, shared
// subexpressions), kept as plain tests so they run on every build.

#[test]
fn pinned_table_3_4_program_lowers_and_verifies() {
    let p = table_3_4_program();
    let obj = lower_and_assemble(&p).expect("assembles");
    let report = verify_object(&obj, &VerifyOptions::default());
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn pinned_shared_subexpression_fanout() {
    // (a+b) used by three consumers — fanout forces a dup chain.
    let mut dag: Dag<Op> = Dag::new();
    let a = dag.add_node(Op::Fetch("a".into()), &[]);
    let b = dag.add_node(Op::Fetch("b".into()), &[]);
    let s = dag.add_node(Op::Add, &[a, b]);
    let n = dag.add_node(Op::Neg, &[s]);
    let m = dag.add_node(Op::Mul, &[s, s]);
    let t = dag.add_node(Op::Add, &[n, m]);
    let _ = dag.add_node(Op::Sub, &[t, s]);
    for weights in [[0; 8], [7, 3, 1, 0, 5, 2, 6, 4], [1, 2, 3, 4, 5, 6, 7, 8]] {
        check_pipeline(&dag, &weights);
    }
}

#[test]
fn pinned_unary_tower() {
    // A long Neg/Not tower: every instruction consumes the previous
    // result immediately (offset 0 throughout).
    let mut dag: Dag<Op> = Dag::new();
    let mut v = dag.add_node(Op::Literal(5), &[]);
    for i in 0..12 {
        let op = if i % 2 == 0 { Op::Neg } else { Op::Not };
        v = dag.add_node(op, &[v]);
    }
    check_pipeline(&dag, &[0; 8]);
}

#[test]
fn pinned_two_independent_chains() {
    // Two chains whose interleaving depends on the weight table; both
    // interleavings must verify.
    let mut dag: Dag<Op> = Dag::new();
    let mut l = dag.add_node(Op::Literal(2), &[]);
    for _ in 0..4 {
        l = dag.add_node(Op::Neg, &[l]);
    }
    let mut r = dag.add_node(Op::Fetch("c".into()), &[]);
    for _ in 0..4 {
        r = dag.add_node(Op::Not, &[r]);
    }
    let _ = dag.add_node(Op::Sub, &[l, r]);
    check_pipeline(&dag, &[0, 0, 9, 1, 0, 0, 0, 0]);
    check_pipeline(&dag, &[0, 9, 1, 9, 0, 0, 0, 0]);
}
