; Dangling channel: the chan trap allocates a fresh channel that this
; single context then receives on — no context can ever send (QV0201).
main:   trap #6,#0 :r19
        recv r19,#0 :r0
        trap #2,#0
