; Queue underflow: the +2 advance consumes two queue slots that no
; instruction ever produced (QV0001).
main:   plus+2 #1,#2 :r0
        send+1 #0,r0
        trap #2,#0
