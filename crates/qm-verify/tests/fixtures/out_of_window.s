; Out-of-window dup: offset 100 is legal under the default 256-word
; queue page but reaches outside a 64-word page (QV0003 when verified
; with --page-words 64).
main:   plus #1,#0 :r0
        dup1 :r100
        trap #2,#0
