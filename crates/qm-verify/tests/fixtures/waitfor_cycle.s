; Crossed rendezvous: main receives the peer's result before sending
; the value the peer is waiting for. Even with buffered sends the two
; contexts wait on each other forever (QV0202).
main:   trap #0,#peer :r0,r1
        recv r1,#0 :r2
        send r0,#1
        trap #2,#0
peer:   recv r17,#0 :r0
        send+1 r18,r0
        trap #2,#0
