//! Negative fixtures: each program under `tests/fixtures/` is rejected
//! with exactly the diagnostic code its name promises.

use qm_isa::asm::assemble;
use qm_verify::{verify_object, Code, Report, Severity, VerifyOptions};

fn verify_src(src: &str, opts: &VerifyOptions) -> Report {
    verify_object(&assemble(src).expect("fixture assembles"), opts)
}

/// The distinct error-severity codes of a report, sorted.
fn error_codes(r: &Report) -> Vec<Code> {
    let mut codes: Vec<Code> =
        r.diags.iter().filter(|d| d.severity == Severity::Error).map(|d| d.code).collect();
    codes.sort();
    codes.dedup();
    codes
}

#[test]
fn underflow_fixture_is_rejected_with_qv0001() {
    let r = verify_src(include_str!("fixtures/underflow.s"), &VerifyOptions::default());
    assert_eq!(error_codes(&r), vec![Code::QueueUnderflow], "{}", r.render());
    assert_eq!(Code::QueueUnderflow.as_str(), "QV0001");
    assert!(r.has_errors());
}

#[test]
fn out_of_window_fixture_is_rejected_with_qv0003() {
    let src = include_str!("fixtures/out_of_window.s");
    let small = VerifyOptions { page_words: 64 };
    let r = verify_src(src, &small);
    assert_eq!(error_codes(&r), vec![Code::DupOutsideWindow], "{}", r.render());
    assert_eq!(Code::DupOutsideWindow.as_str(), "QV0003");
    // The same program is in-window under the default 256-word page.
    let r = verify_src(src, &VerifyOptions::default());
    assert!(!r.has_errors(), "{}", r.render());
}

#[test]
fn dangling_channel_fixture_is_rejected_with_qv0201() {
    let r = verify_src(include_str!("fixtures/dangling_channel.s"), &VerifyOptions::default());
    assert_eq!(error_codes(&r), vec![Code::DanglingChannel], "{}", r.render());
    assert_eq!(Code::DanglingChannel.as_str(), "QV0201");
}

#[test]
fn waitfor_cycle_fixture_is_rejected_with_qv0202() {
    let r = verify_src(include_str!("fixtures/waitfor_cycle.s"), &VerifyOptions::default());
    assert_eq!(error_codes(&r), vec![Code::StaticDeadlock], "{}", r.render());
    assert_eq!(Code::StaticDeadlock.as_str(), "QV0202");
    let d = r.diags.iter().find(|d| d.code == Code::StaticDeadlock).unwrap();
    assert!(
        d.notes.iter().any(|n| n.contains("waits for")),
        "cycle notes spell the wait-for edges: {}",
        r.render()
    );
}

#[test]
fn fixtures_render_stable_codes_in_json() {
    let r = verify_src(include_str!("fixtures/underflow.s"), &VerifyOptions::default());
    assert!(r.render_json().contains("\"code\":\"QV0001\""), "{}", r.render_json());
}
