//! Facade crate re-exporting the whole queue-machine workspace.
//!
//! A reproduction of Preiss, *Data Flow on a Queue Machine* (University of
//! Toronto Ph.D. thesis / ISCA 1985): pseudo-static data flow executed on
//! indexed queue machines.
//!
//! * [`core`] — execution models and data-flow-graph theory (Chapter 3).
//! * [`occam`] — the OCCAM compiler (Chapter 4).
//! * [`isa`] — the processing-element ISA, assembler and emulator
//!   (Chapter 5).
//! * [`verify`] — the static queue-discipline verifier and lint pass
//!   over assembled object code.
//! * [`sim`] — the multiprocessor simulator and kernel (Chapters 5–6).
//! * [`workloads`] — the four thesis benchmark programs (Chapter 6).
//!
//! # Quickstart
//!
//! ```
//! use queue_machine::core::expr::ParseTree;
//! use queue_machine::core::{simple, stack};
//!
//! let tree = ParseTree::parse_infix("a*b + (c-d)/e")?;
//! let env = |n: &str| match n { "a" => 2, "b" => 3, "c" => 20, "d" => 6, "e" => 7, _ => 0 };
//! assert_eq!(simple::evaluate_tree(&tree, &env)?, stack::evaluate_tree(&tree, &env)?);
//! # Ok::<(), queue_machine::core::ModelError>(())
//! ```

pub use qm_core as core;
pub use qm_isa as isa;
pub use qm_occam as occam;
pub use qm_sim as sim;
pub use qm_verify as verify;
pub use qm_workloads as workloads;
