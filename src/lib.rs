//! Facade crate re-exporting the whole queue-machine workspace.
//!
//! A reproduction of Preiss, *Data Flow on a Queue Machine* (University of
//! Toronto Ph.D. thesis / ISCA 1985): pseudo-static data flow executed on
//! indexed queue machines.
//!
//! * [`core`] — execution models and data-flow-graph theory (Chapter 3).
//! * [`occam`] — the OCCAM compiler (Chapter 4).
//! * [`isa`] — the processing-element ISA, assembler and emulator
//!   (Chapter 5).
//! * [`verify`] — the static queue-discipline verifier and lint pass
//!   over assembled object code.
//! * [`sim`] — the multiprocessor simulator and kernel (Chapters 5–6).
//! * [`workloads`] — the four thesis benchmark programs (Chapter 6).
//! * [`serve`] — the simulator as a multi-tenant HTTP service speaking
//!   the versioned `qm-api/v1` envelope (`docs/API.md`).
//!
//! The [`prelude`] re-exports the handful of types almost every user
//! touches — `use queue_machine::prelude::*;` and go.
//!
//! # Quickstart
//!
//! ```
//! use queue_machine::core::expr::ParseTree;
//! use queue_machine::core::{simple, stack};
//!
//! let tree = ParseTree::parse_infix("a*b + (c-d)/e")?;
//! let env = |n: &str| match n { "a" => 2, "b" => 3, "c" => 20, "d" => 6, "e" => 7, _ => 0 };
//! assert_eq!(simple::evaluate_tree(&tree, &env)?, stack::evaluate_tree(&tree, &env)?);
//! # Ok::<(), queue_machine::core::ModelError>(())
//! ```

pub use qm_core as core;
pub use qm_isa as isa;
pub use qm_occam as occam;
pub use qm_serve as serve;
pub use qm_sim as sim;
pub use qm_verify as verify;
pub use qm_workloads as workloads;

/// The types most programs start from, under one import.
///
/// ```
/// use queue_machine::prelude::*;
///
/// let r = WorkloadRun::with_pes(2).run(&matmul(4)).unwrap();
/// assert!(r.correct);
/// ```
pub mod prelude {
    pub use qm_occam::{compile, Options};
    pub use qm_sim::config::SystemConfig;
    pub use qm_sim::fault::FaultPlan;
    pub use qm_sim::snapshot::Snapshot;
    pub use qm_sim::system::{RunOutcome, RunStatus, System};
    pub use qm_sim::{SimError, Simulation};
    pub use qm_verify::{verify_object, Report, VerifyLevel, VerifyOptions};
    pub use qm_workloads::{
        cholesky, congruence, fft, matmul, reduction, BenchResult, Workload, WorkloadRun,
    };
}
